package router

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/sim"
)

// rig is a one- or two-router test fixture.
type rig struct {
	k *sim.Kernel
	a *Router
	b *Router
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	a := MustNew("A", cfg)
	k.Register(a)
	return &rig{k: k, a: a}
}

// newPairRig wires A's +x output to B's -x input and vice versa.
func newPairRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := newRig(t, cfg)
	r.b = MustNew("B", cfg)
	r.k.Register(r.b)
	ab := NewChannel(r.k)
	r.a.ConnectOut(PortXPlus, ab.Out())
	r.b.ConnectIn(PortXMinus, ab.In())
	ba := NewChannel(r.k)
	r.b.ConnectOut(PortXMinus, ba.Out())
	r.a.ConnectIn(PortXPlus, ba.In())
	return r
}

func maskOf(ports ...int) sched.PortMask {
	var m sched.PortMask
	for _, p := range ports {
		m |= 1 << p
	}
	return m
}

func tcPkt(conn, stamp uint8, tag byte) packet.TCPacket {
	p := packet.TCPacket{Conn: conn, Stamp: stamp}
	p.Payload[0] = tag
	return p
}

func TestLocalTCDelivery(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Connection 1 terminates here: deliver with id 9, delay 10 slots.
	if err := r.a.SetConnection(1, 9, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 0xAB))
	ok := r.k.RunUntil(func() bool { return r.a.Stats.TCDelivered > 0 }, 2000)
	if !ok {
		t.Fatalf("packet not delivered; stats %+v", r.a.Stats)
	}
	d := r.a.DrainTC()
	if len(d) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(d))
	}
	if d[0].Conn != 9 {
		t.Errorf("delivered conn = %d, want 9 (rewritten id)", d[0].Conn)
	}
	if d[0].Stamp != 10 {
		t.Errorf("delivered stamp = %d, want 10 (ℓ0+d)", d[0].Stamp)
	}
	if d[0].Payload[0] != 0xAB {
		t.Errorf("payload corrupted: %#x", d[0].Payload[0])
	}
	if r.a.Stats.TCDeadlineMisses != 0 {
		t.Errorf("unexpected deadline misses: %d", r.a.Stats.TCDeadlineMisses)
	}
	if r.a.FreeSlots() != DefaultConfig().Slots {
		t.Errorf("memory slot leaked: %d free, want %d", r.a.FreeSlots(), DefaultConfig().Slots)
	}
}

func TestTwoHopTCDelivery(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	// A: conn 1 → conn 2, d=5, out +x.  B: conn 2 → conn 7, d=5, local.
	if err := r.a.SetConnection(1, 2, 5, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 5, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 0x55))
	ok := r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 10000)
	if !ok {
		t.Fatalf("not delivered; A=%+v B=%+v", r.a.Stats, r.b.Stats)
	}
	d := r.b.DrainTC()
	if d[0].Conn != 7 {
		t.Errorf("conn = %d, want 7", d[0].Conn)
	}
	if d[0].Stamp != 10 {
		t.Errorf("stamp = %d, want 10 (ℓ0+d0+d1)", d[0].Stamp)
	}
	if d[0].Payload[0] != 0x55 {
		t.Error("payload corrupted across hop")
	}
	if r.a.Stats.TCTransmitted[PortXPlus] != 1 {
		t.Errorf("A transmitted %d on +x, want 1", r.a.Stats.TCTransmitted[PortXPlus])
	}
}

// TestEarlyPacketHeldToLogicalArrival verifies Queue 3 semantics: with a
// zero horizon, a packet that reaches the next hop ahead of its logical
// arrival time is held until ℓ(m).
func TestEarlyPacketHeldToLogicalArrival(t *testing.T) {
	r := newPairRig(t, DefaultConfig()) // horizons default 0
	// d0 = 20 slots at A, so the packet reaches B around slot 3-4, far
	// ahead of its ℓ at B of 20.
	if err := r.a.SetConnection(1, 2, 20, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 1))
	ok := r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 30000)
	if !ok {
		t.Fatalf("not delivered; A=%+v B=%+v", r.a.Stats, r.b.Stats)
	}
	d := r.b.DrainTC()
	// ℓ at B is slot 20 = cycle 400; delivery (20-byte reception)
	// cannot complete before then.
	if d[0].Cycle < 400 {
		t.Errorf("early packet delivered at cycle %d, before ℓ (cycle 400)", d[0].Cycle)
	}
	// And it must not sit past its deadline ℓ+d = slot 30 = cycle 600
	// (plus reception time).
	if d[0].Cycle > 620 {
		t.Errorf("packet delivered at cycle %d, after deadline window", d[0].Cycle)
	}
}

// TestHorizonReleasesEarlyTraffic verifies that a nonzero horizon lets
// early packets ship when the link is idle.
func TestHorizonReleasesEarlyTraffic(t *testing.T) {
	cfg := DefaultConfig()
	for p := range cfg.Horizons {
		cfg.Horizons[p] = 100
	}
	r := newPairRig(t, cfg)
	if err := r.a.SetConnection(1, 2, 20, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 1))
	ok := r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 30000)
	if !ok {
		t.Fatal("not delivered")
	}
	d := r.b.DrainTC()
	// With h=100 covering the earliness, delivery happens as fast as the
	// pipeline allows — well before ℓ at B (cycle 400).
	if d[0].Cycle >= 400 {
		t.Errorf("horizon did not release early packet: delivered at %d", d[0].Cycle)
	}
}

func TestLocalBEDelivery(t *testing.T) {
	r := newRig(t, DefaultConfig())
	frame, err := packet.NewBE(0, 0, []byte("payload!"))
	if err != nil {
		t.Fatal(err)
	}
	r.a.InjectBE(frame)
	ok := r.k.RunUntil(func() bool { return r.a.Stats.BEDelivered > 0 }, 2000)
	if !ok {
		t.Fatal("BE packet not delivered locally")
	}
	d := r.a.DrainBE()
	if string(d[0].Payload) != "payload!" {
		t.Errorf("payload = %q", d[0].Payload)
	}
}

func TestTwoHopBEDelivery(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	frame, err := packet.NewBE(1, 0, []byte("across the link"))
	if err != nil {
		t.Fatal(err)
	}
	r.a.InjectBE(frame)
	ok := r.k.RunUntil(func() bool { return r.b.Stats.BEDelivered > 0 }, 5000)
	if !ok {
		t.Fatalf("BE packet not delivered; A=%+v B=%+v", r.a.Stats, r.b.Stats)
	}
	d := r.b.DrainBE()
	if string(d[0].Payload) != "across the link" {
		t.Errorf("payload = %q", d[0].Payload)
	}
	if r.a.Stats.BEPacketsSent[PortXPlus] != 1 {
		t.Errorf("A sent %d BE packets on +x, want 1", r.a.Stats.BEPacketsSent[PortXPlus])
	}
}

// TestBEWormholeLatencyLinear verifies cut-through behaviour: latency
// grows by one cycle per extra payload byte, not per-hop-buffered.
func TestBEWormholeLatencyLinear(t *testing.T) {
	lat := func(n int) int64 {
		r := newPairRig(t, DefaultConfig())
		frame, err := packet.NewBE(1, 0, make([]byte, n))
		if err != nil {
			t.Fatal(err)
		}
		r.a.InjectBE(frame)
		if !r.k.RunUntil(func() bool { return r.b.Stats.BEDelivered > 0 }, 100000) {
			t.Fatalf("size %d not delivered", n)
		}
		return r.b.DrainBE()[0].Cycle
	}
	l10, l110 := lat(10), lat(110)
	if d := l110 - l10; d != 100 {
		t.Errorf("latency delta for +100 bytes = %d, want exactly 100 (wormhole pipelining)", d)
	}
}

// TestOnTimeTCPreemptsBE floods the +x link with best-effort traffic and
// then injects an on-time time-constrained packet; the TC packet must cut
// in at a flit boundary rather than wait for the wormhole tail.
func TestOnTimeTCPreemptsBE(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	// d=2 at A keeps the logical arrival time at B near "now", so the
	// measured latency isolates link preemption rather than B's
	// early-traffic holding (tested elsewhere).
	if err := r.a.SetConnection(1, 2, 2, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// One giant best-effort packet: without preemption it would hold the
	// link for ~4000 cycles.
	frame, err := packet.NewBE(1, 0, make([]byte, 4000))
	if err != nil {
		t.Fatal(err)
	}
	r.a.InjectBE(frame)
	r.k.Run(200) // let the wormhole get going
	if r.a.Stats.BEBytes[PortXPlus] == 0 {
		t.Fatal("best-effort stream never started")
	}
	r.a.InjectTC(tcPkt(1, packet.StampOf(r.a.SlotNow(int64(r.k.Now()))), 3))
	start := int64(r.k.Now())
	ok := r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 3000)
	if !ok {
		t.Fatalf("TC packet starved behind best-effort wormhole; B=%+v", r.b.Stats)
	}
	lat := r.b.DrainTC()[0].Cycle - start
	// Injection (20) + memory+schedule (~10) + link (20) + reception (20)
	// plus pipeline slack; generous bound far below the 4000-cycle worm.
	if lat > 200 {
		t.Errorf("TC latency %d cycles under BE load; preemption not effective", lat)
	}
	if r.b.Stats.BEDelivered != 0 {
		t.Error("BE packet finished before TC; preemption broken")
	}
}

// TestBEUsesExcessBandwidth verifies the converse: best-effort flits flow
// whenever no on-time TC packet is ready, even with early TC queued.
func TestBEUsesExcessBandwidth(t *testing.T) {
	r := newPairRig(t, DefaultConfig()) // h = 0
	if err := r.a.SetConnection(1, 2, 60, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// TC packet whose ℓ0 is far in the future: ineligible for a long time.
	r.a.InjectTC(tcPkt(1, 100, 1))
	frame, err := packet.NewBE(1, 0, make([]byte, 500))
	if err != nil {
		t.Fatal(err)
	}
	r.a.InjectBE(frame)
	ok := r.k.RunUntil(func() bool { return r.b.Stats.BEDelivered > 0 }, 5000)
	if !ok {
		t.Fatal("best-effort packet blocked behind ineligible early TC packet")
	}
	if r.a.Stats.TCTransmitted[PortXPlus] != 0 {
		t.Error("early TC packet transmitted despite h=0 and ℓ in the future")
	}
}

func TestMulticastFanout(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel()
	a := MustNew("A", cfg)
	bx := MustNew("Bx", cfg)
	by := MustNew("By", cfg)
	k.Register(a)
	k.Register(bx)
	k.Register(by)
	chx := NewChannel(k)
	a.ConnectOut(PortXPlus, chx.Out())
	bx.ConnectIn(PortXMinus, chx.In())
	chy := NewChannel(k)
	a.ConnectOut(PortYPlus, chy.Out())
	by.ConnectIn(PortYMinus, chy.In())

	if err := a.SetConnection(1, 2, 10, maskOf(PortXPlus, PortYPlus)); err != nil {
		t.Fatal(err)
	}
	if err := bx.SetConnection(2, 11, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	if err := by.SetConnection(2, 12, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	a.InjectTC(tcPkt(1, 0, 0x77))
	ok := k.RunUntil(func() bool {
		return bx.Stats.TCDelivered > 0 && by.Stats.TCDelivered > 0
	}, 10000)
	if !ok {
		t.Fatalf("multicast incomplete: Bx=%d By=%d", bx.Stats.TCDelivered, by.Stats.TCDelivered)
	}
	if got := bx.DrainTC()[0]; got.Conn != 11 || got.Payload[0] != 0x77 {
		t.Errorf("Bx got %+v", got)
	}
	if got := by.DrainTC()[0]; got.Conn != 12 || got.Payload[0] != 0x77 {
		t.Errorf("By got %+v", got)
	}
	// The shared memory slot must be reclaimed after both copies left.
	if a.FreeSlots() != cfg.Slots {
		t.Errorf("slot not reclaimed after multicast: %d free", a.FreeSlots())
	}
}

func TestTCDropNoRoute(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.a.InjectTC(tcPkt(99, 0, 0)) // no table entry for conn 99
	r.k.Run(200)
	if r.a.Stats.TCDropsNoRoute != 1 {
		t.Errorf("TCDropsNoRoute = %d, want 1", r.a.Stats.TCDropsNoRoute)
	}
	if r.a.FreeSlots() != DefaultConfig().Slots {
		t.Errorf("dropped packet leaked memory slot")
	}
}

func TestTCDropNoSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slots = 2
	r := newRig(t, cfg)
	// Route to +x, which has no link: packets to a dead port are dropped
	// by the output, but with only 2 slots and a flood of injections the
	// idle FIFO runs dry first.
	if err := r.a.SetConnection(1, 2, 100, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r.a.InjectTC(tcPkt(1, 120, byte(i))) // far-future ℓ: held, memory stays full
	}
	r.k.Run(packet.TCBytes*8 + 200)
	if r.a.Stats.TCDropsNoSlot == 0 {
		t.Errorf("expected idle-FIFO exhaustion drops; stats %+v", r.a.Stats)
	}
}

func TestControlInterfaceStagedWrites(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// The Table 3 sequence, written field by field.
	writes := []struct {
		f ControlField
		v uint8
	}{
		{CtlOutConn, 42},
		{CtlDelay, 17},
		{CtlPortMask, uint8(maskOf(PortYMinus, PortLocal))},
		{CtlCommitConn, 5},
	}
	for _, w := range writes {
		if err := r.a.ControlWrite(w.f, w.v); err != nil {
			t.Fatal(err)
		}
	}
	ent := r.a.Connection(5)
	if !ent.Valid || ent.Out != 42 || ent.Delay != 17 || ent.Mask != maskOf(PortYMinus, PortLocal) {
		t.Errorf("entry = %+v", ent)
	}
	// Horizon: two-write sequence.
	if err := r.a.ControlWrite(CtlHorizonMask, uint8(maskOf(PortXPlus))); err != nil {
		t.Fatal(err)
	}
	if err := r.a.ControlWrite(CtlHorizonValue, 9); err != nil {
		t.Fatal(err)
	}
	if r.a.Horizon(PortXPlus) != 9 {
		t.Errorf("horizon = %d, want 9", r.a.Horizon(PortXPlus))
	}
	if r.a.Horizon(PortXMinus) != 0 {
		t.Errorf("unmasked port horizon changed: %d", r.a.Horizon(PortXMinus))
	}
}

func TestControlInterfaceRejects(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if err := r.a.ControlWrite(CtlDelay, 200); err == nil {
		t.Error("delay beyond half clock range accepted")
	}
	if err := r.a.ControlWrite(CtlPortMask, 0xFF); err == nil {
		t.Error("mask with phantom ports accepted")
	}
	if err := r.a.ControlWrite(CtlHorizonValue, 128); err == nil {
		t.Error("horizon beyond half clock range accepted")
	}
	if err := r.a.ControlWrite(ControlField(99), 0); err == nil {
		t.Error("unknown field accepted")
	}
	if err := r.a.SetHorizon(maskOf(PortXPlus), 5); err != nil {
		t.Error(err)
	}
}

func TestClearConnection(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if err := r.a.SetConnection(3, 4, 5, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	if err := r.a.ClearConnection(3); err != nil {
		t.Fatal(err)
	}
	if r.a.Connection(3).Valid {
		t.Error("entry still valid after clear")
	}
	r.a.InjectTC(tcPkt(3, 0, 0))
	r.k.Run(200)
	if r.a.Stats.TCDropsNoRoute != 1 {
		t.Errorf("packet on torn-down connection not dropped: %+v", r.a.Stats)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Slots = 0 },
		func(c *Config) { c.Conns = 0 },
		func(c *Config) { c.Conns = 300 },
		func(c *Config) { c.ClockBits = 1 },
		func(c *Config) { c.ClockBits = 9 },
		func(c *Config) { c.FlitBufBytes = 2 },
		func(c *Config) { c.ChunkBytes = 7 },
		func(c *Config) { c.ChunkBytes = 0 },
		func(c *Config) { c.SchedPeriod = 0 },
		func(c *Config) { c.Horizons[0] = 128 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPortName(t *testing.T) {
	names := map[int]string{0: "+x", 1: "-x", 2: "+y", 3: "-y", 4: "local", 9: "port(9)"}
	for p, want := range names {
		if got := PortName(p); got != want {
			t.Errorf("PortName(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if SchedEDF.String() != "edf" || SchedFIFO.String() != "fifo" ||
		SchedStaticPriority.String() != "static-priority" {
		t.Error("SchedulerKind labels wrong")
	}
}

// TestBEFlowControlNoOverrun drives several packets at the same output
// and checks credits prevent flit-buffer overruns.
func TestBEFlowControlNoOverrun(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	for i := 0; i < 10; i++ {
		frame, err := packet.NewBE(1, 0, make([]byte, 200))
		if err != nil {
			t.Fatal(err)
		}
		r.a.InjectBE(frame)
	}
	r.k.RunUntil(func() bool { return r.b.Stats.BEDelivered >= 10 }, 50000)
	if r.b.Stats.BEDelivered != 10 {
		t.Fatalf("delivered %d/10", r.b.Stats.BEDelivered)
	}
	if r.b.Stats.BEBufferOverruns != 0 {
		t.Errorf("flit buffer overruns: %d", r.b.Stats.BEBufferOverruns)
	}
	if r.b.Stats.BEMalformed != 0 {
		t.Errorf("malformed BE packets: %d", r.b.Stats.BEMalformed)
	}
}

// TestVCTReducesLatency compares time-constrained latency with and
// without the Section 7 virtual cut-through extension on an idle network.
func TestVCTReducesLatency(t *testing.T) {
	run := func(vct bool) int64 {
		cfg := DefaultConfig()
		cfg.VCT = vct
		for p := range cfg.Horizons {
			cfg.Horizons[p] = 100
		}
		r := newPairRig(t, cfg)
		if err := r.a.SetConnection(1, 2, 20, maskOf(PortXPlus)); err != nil {
			t.Fatal(err)
		}
		if err := r.b.SetConnection(2, 7, 20, maskOf(PortLocal)); err != nil {
			t.Fatal(err)
		}
		r.a.InjectTC(tcPkt(1, 0, 1))
		if !r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 30000) {
			t.Fatalf("vct=%v: not delivered", vct)
		}
		return r.b.DrainTC()[0].Cycle
	}
	store := run(false)
	cut := run(true)
	if cut >= store {
		t.Errorf("VCT latency %d not better than store-and-forward %d", cut, store)
	}
	// Cut-through skips the full-packet buffering at each of three
	// store points; expect at least one packet time of savings.
	if store-cut < packet.TCBytes {
		t.Errorf("VCT saved only %d cycles, want ≥ %d", store-cut, packet.TCBytes)
	}
}

func TestVCTCountsCuts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCT = true
	for p := range cfg.Horizons {
		cfg.Horizons[p] = 100
	}
	r := newPairRig(t, cfg)
	if err := r.a.SetConnection(1, 2, 20, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 20, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 1))
	r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 30000)
	if r.a.Stats.TCCutThroughs == 0 && r.b.Stats.TCCutThroughs == 0 {
		t.Error("no cut-throughs recorded on an idle network with VCT on")
	}
	got := r.b.DrainTC()
	if len(got) != 1 || got[0].Conn != 7 || got[0].Payload[0] != 1 {
		t.Errorf("VCT corrupted delivery: %+v", got)
	}
}

// TestBEMisroute sends a best-effort packet toward a nonexistent
// neighbour; the router must drain and count it rather than wedge.
func TestBEMisroute(t *testing.T) {
	r := newRig(t, DefaultConfig())
	frame, err := packet.NewBE(3, 0, []byte("into the void"))
	if err != nil {
		t.Fatal(err)
	}
	r.a.InjectBE(frame)
	r.k.Run(500)
	if r.a.Stats.BEMisroutes != 1 {
		t.Errorf("BEMisroutes = %d, want 1", r.a.Stats.BEMisroutes)
	}
	// The injection path must be clear for the next packet.
	ok, _ := packet.NewBE(0, 0, []byte("ok"))
	r.a.InjectBE(ok)
	r.k.RunUntil(func() bool { return r.a.Stats.BEDelivered > 0 }, 2000)
	if r.a.Stats.BEDelivered != 1 {
		t.Error("injection path wedged after misroute")
	}
}

// TestTCDeadPortDrop schedules a time-constrained packet to an unwired
// link and checks the router drains it.
func TestTCDeadPortDrop(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if err := r.a.SetConnection(1, 2, 10, maskOf(PortYPlus)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 0))
	r.k.Run(2000)
	if r.a.Stats.TCDeadPortDrops != 1 {
		t.Errorf("TCDeadPortDrops = %d, want 1; stats %+v", r.a.Stats.TCDeadPortDrops, r.a.Stats)
	}
	if r.a.FreeSlots() != DefaultConfig().Slots {
		t.Error("dead-port drop leaked a memory slot")
	}
}
