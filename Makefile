GO ?= go

.PHONY: check build vet test fmt capacity bench benchall trace

# check is the tier-1 gate: vet, build, race tests, formatting, and the
# capacity gate.
check: vet build test fmt capacity

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# fmt fails (rather than rewrites) so CI catches unformatted files.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# capacity runs the capacity-probe campaign on a small mesh plus the
# admission audit byte-identity gate; it exits nonzero on a ledger
# conservation violation, an unexplained rejection, or an audit log
# that differs across worker counts.
capacity:
	$(GO) run ./cmd/rtbench -exp capacity -mesh 6 -scenario scenarios/faulty.json -cycles 35000

# bench runs the simulator-speed micro-benchmarks (router tick hot
# paths, cycle rate sequential vs parallel, scheduler selection, sort
# keys) with allocation reporting, then runs the full scaling sweep —
# mesh size × worker count, printing the speedup table — and records
# machine-readable numbers (including allocs/cycle, GOMAXPROCS and
# NumCPU) in $(BENCH_JSON).
BENCH_JSON ?= BENCH_router.json
bench:
	$(GO) test -run '^$$' -bench BenchmarkRouterTick -benchmem ./internal/router
	$(GO) test -run '^$$' -bench 'BenchmarkRouterCycleRate|BenchmarkT4SchedulerThroughput|BenchmarkFig6SortKeys' -benchmem .
	$(GO) run ./cmd/rtbench -exp sweep -benchjson $(BENCH_JSON)

# benchall runs every benchmark, including the full experiment replays.
benchall:
	$(GO) test -bench=. -benchmem ./...

# trace produces a sample Perfetto trace from the Figure 6 scenario
# (open $(TRACE_JSON) at https://ui.perfetto.dev, or chrome://tracing).
TRACE_JSON ?= trace.json
trace:
	$(GO) run ./cmd/rtsim -scenario scenarios/fig6.json -trace-out $(TRACE_JSON)
