package admission

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/router"
)

// Seal builds an immutable capacity snapshot of the reservation ledger
// and publishes it as the controller's sealed state, returning it. The
// build is fully deterministic: links are ordered by (node, port), and
// per-link float sums run over tasks sorted by channel id, so two
// ledgers holding the same reservations render byte-identically no
// matter what admit/teardown/reroute history produced them.
//
// Seal is a host-side control-plane call (like Admit); the published
// pointer is what concurrent scrapers read via Sealed.
func (c *Controller) Seal() *metrics.CapacitySnapshot {
	snap := c.buildSnapshot()
	c.sealed.Store(snap)
	return snap
}

// Sealed returns the last snapshot published by Seal, nil before the
// first seal. This is the PR-6 scrape-safety contract: a live HTTP
// scrape observes only explicitly published ledger states, never a
// half-updated one. Wire it with metrics.Registry.SetCapacitySource.
func (c *Controller) Sealed() *metrics.CapacitySnapshot {
	return c.sealed.Load()
}

func (c *Controller) buildSnapshot() *metrics.CapacitySnapshot {
	snap := &metrics.CapacitySnapshot{Channels: len(c.chans)}
	// The dense link table ascends in (node.Y, node.X, port) order with
	// inject first — already the snapshot's publish order, no sort needed.
	keys := make([]linkKey, 0, 64)
	for i, ls := range c.links {
		if ls != nil && len(ls.tasks) > 0 {
			keys = append(keys, c.linkKeyAt(i))
		}
	}
	minHead := int64(-1)
	for _, k := range keys {
		tasks := append([]task(nil), c.linkAt(k).tasks...)
		sort.Slice(tasks, func(i, j int) bool { return tasks[i].chanID < tasks[j].chanID })
		rep := edfAnalyze(tasks)
		var reserved int64
		worst := int64(math.MaxInt64)
		for _, tk := range tasks {
			reserved += tk.C
			if ch := c.chans[tk.chanID]; ch != nil && ch.Margin < worst {
				worst = ch.Margin
			}
		}
		if worst == math.MaxInt64 {
			worst = 0
		}
		port := "inject"
		if k.port != portInject {
			port = router.PortName(k.port)
		}
		lc := metrics.LinkCapacity{
			Link: k.String(), NodeX: k.node.X, NodeY: k.node.Y, Port: port,
			Channels: len(tasks), Utilization: rep.util,
			ReservedSlots: reserved, HeadroomSlots: rep.headroom,
			WorstMarginSlots: worst,
		}
		snap.Links = append(snap.Links, lc)
		if lc.Utilization > snap.WorstUtilization {
			snap.WorstUtilization = lc.Utilization
			snap.WorstLink = lc.Link
		}
		if minHead < 0 || lc.HeadroomSlots < minHead {
			minHead = lc.HeadroomSlots
		}
	}
	if minHead >= 0 {
		snap.MinHeadroomSlots = minHead
	}
	for _, coord := range c.net.Coords() {
		ns := c.node(coord)
		used := len(ns.usedIDs)
		if ns.total == 0 && used == 0 {
			continue
		}
		cfg := c.net.Router(coord).Config()
		nc := metrics.NodeCapacity{
			Node: coord.String(), BuffersUsed: ns.total, BuffersLimit: cfg.Slots,
			ConnsUsed: used, ConnsLimit: cfg.Conns,
		}
		for p := 0; p < router.NumPorts; p++ {
			if ns.portBuffers[p] != 0 {
				if nc.PortBuffers == nil {
					nc.PortBuffers = make(map[string]int)
				}
				nc.PortBuffers[router.PortName(p)] = ns.portBuffers[p]
			}
		}
		snap.Nodes = append(snap.Nodes, nc)
	}
	return snap
}

// VerifyLedger checks the conservation invariant: the per-link task
// lists, per-node buffer debits, and identifier reservations must equal
// exactly the sum of the active channels' recorded reservations —
// nothing leaked on teardown, nothing double-counted on restore. It
// returns nil or the first discrepancy found.
func (c *Controller) VerifyLedger() error {
	type nodeWant struct {
		ports [router.NumPorts]int
		total int
		ids   map[uint8]bool
	}
	wantLink := make(map[linkKey]map[int]task)
	want := make(map[mesh.Coord]*nodeWant)
	reserve := func(k linkKey, tk task) {
		m := wantLink[k]
		if m == nil {
			m = make(map[int]task)
			wantLink[k] = m
		}
		m[tk.chanID] = tk
	}
	getNode := func(co mesh.Coord) *nodeWant {
		n := want[co]
		if n == nil {
			n = &nodeWant{ids: make(map[uint8]bool)}
			want[co] = n
		}
		return n
	}
	for id, ch := range c.chans {
		if id != ch.ID {
			return fmt.Errorf("admission: ledger: channel %d keyed as %d", ch.ID, id)
		}
		// Per-hop deadlines: each hop's link tasks carry that hop's d
		// (uniform LocalD for default channels, DSplit[j] for layout
		// ones); the injection pseudo-link carries the source hop's.
		tk := task{C: ch.Spec.MessageSlots(), T: ch.Spec.Imin, D: ch.hops[0].d, chanID: ch.ID}
		reserve(linkKey{ch.Src, portInject}, tk)
		for _, h := range ch.hops {
			n := getNode(h.node)
			n.total += h.buffers
			n.ids[h.inConn] = true
			if h.mask.Has(router.PortLocal) {
				n.ids[h.outConn] = true
			}
			tk.D = h.d
			for p := 0; p < router.NumPorts; p++ {
				if !h.mask.Has(p) {
					continue
				}
				n.ports[p] += h.buffers
				reserve(linkKey{h.node, p}, tk)
			}
		}
	}
	for i, ls := range c.links {
		if ls == nil {
			continue
		}
		k := c.linkKeyAt(i)
		seen := make(map[int]bool, len(ls.tasks))
		for _, tk := range ls.tasks {
			w, ok := wantLink[k][tk.chanID]
			if !ok {
				return fmt.Errorf("admission: ledger: link %s carries a task for channel %d with no matching reservation", k, tk.chanID)
			}
			if seen[tk.chanID] {
				return fmt.Errorf("admission: ledger: link %s counts channel %d twice", k, tk.chanID)
			}
			seen[tk.chanID] = true
			if w != tk {
				return fmt.Errorf("admission: ledger: link %s channel %d holds task %+v, reservations say %+v", k, tk.chanID, tk, w)
			}
		}
		if len(seen) != len(wantLink[k]) {
			return fmt.Errorf("admission: ledger: link %s holds %d tasks, reservations say %d", k, len(seen), len(wantLink[k]))
		}
	}
	for k, m := range wantLink {
		if ls := c.linkAt(k); len(m) > 0 && (ls == nil || len(ls.tasks) == 0) {
			return fmt.Errorf("admission: ledger: link %s reservation missing from the ledger", k)
		}
	}
	for i, ns := range c.nodes {
		co := mesh.Coord{X: i % c.net.W, Y: i / c.net.W}
		var wantTotal int
		var wantPorts [router.NumPorts]int
		var wantIDs map[uint8]bool
		if w := want[co]; w != nil {
			wantTotal, wantPorts, wantIDs = w.total, w.ports, w.ids
		}
		if ns.total != wantTotal {
			return fmt.Errorf("admission: ledger: %s buffer total %d, reservations say %d", co, ns.total, wantTotal)
		}
		if ns.portBuffers != wantPorts {
			return fmt.Errorf("admission: ledger: %s port buffers %v, reservations say %v", co, ns.portBuffers, wantPorts)
		}
		if len(ns.usedIDs) != len(wantIDs) {
			return fmt.Errorf("admission: ledger: %s holds %d connection ids, reservations say %d", co, len(ns.usedIDs), len(wantIDs))
		}
		for id := range wantIDs {
			if !ns.usedIDs[id] {
				return fmt.Errorf("admission: ledger: %s id %d reserved by a channel but not held", co, id)
			}
		}
	}
	for i, ls := range c.links {
		if ls == nil {
			continue
		}
		if err := c.verifyCache(c.linkKeyAt(i), ls); err != nil {
			return err
		}
	}
	return nil
}

// verifyCache cross-checks one link's incremental EDF cache against a
// from-scratch recompute: scalars bit-exact (including the float
// utilization sum), the point set exactly the union of the committed
// tasks' step ladders over the cache's coverage, and the committed
// analysis verdict identical to edfAnalyze's.
func (c *Controller) verifyCache(k linkKey, ls *linkState) error {
	ec := &ls.cache
	if c.cfg.Reference {
		if ec.built {
			return fmt.Errorf("admission: ledger: link %s built an EDF cache in reference mode", k)
		}
		return nil
	}
	if !ec.built {
		return fmt.Errorf("admission: ledger: link %s has no built EDF cache", k)
	}
	if ec.degenerate {
		return fmt.Errorf("admission: ledger: link %s EDF cache degenerate (invalid committed task)", k)
	}
	var sumC int64
	var util float64
	var maxD int64
	for _, tk := range ls.tasks {
		if !validTask(tk) {
			return fmt.Errorf("admission: ledger: link %s committed invalid task %+v", k, tk)
		}
		sumC += tk.C
		util += float64(tk.C) / float64(tk.T)
		if tk.D > maxD {
			maxD = tk.D
		}
	}
	if ec.sumC != sumC {
		return fmt.Errorf("admission: ledger: link %s cache ΣC %d, tasks say %d", k, ec.sumC, sumC)
	}
	if ec.util != util {
		return fmt.Errorf("admission: ledger: link %s cache utilization %v, tasks say %v (bit-exact sum required)", k, ec.util, util)
	}
	if ec.maxD != maxD {
		return fmt.Errorf("admission: ledger: link %s cache maxD %d, tasks say %d", k, ec.maxD, maxD)
	}
	if want := busyBoundFrom(maxD, sumC, util); ec.cover < want && ec.cover < coverCap {
		return fmt.Errorf("admission: ledger: link %s cache covers (0,%d], committed busy-period bound is %d (cap %d)", k, ec.cover, want, coverCap)
	}
	var raw []stepPoint
	for i := range ls.tasks {
		raw = stepsInto(raw, ls.tasks[i], 0, ec.cover)
	}
	var want edfCache
	want.built = true
	want.mergeIn(raw)
	if len(want.points) != len(ec.points) {
		return fmt.Errorf("admission: ledger: link %s caches %d step points, tasks generate %d", k, len(ec.points), len(want.points))
	}
	for i := range want.points {
		if want.points[i] != ec.points[i] {
			return fmt.Errorf("admission: ledger: link %s step point %d is %+v, tasks say %+v", k, i, ec.points[i], want.points[i])
		}
		if want.prefix[i] != ec.prefix[i] {
			return fmt.Errorf("admission: ledger: link %s dbf prefix at t=%d is %d, tasks say %d", k, ec.points[i].t, ec.prefix[i], want.prefix[i])
		}
	}
	if got, ref := ec.committedReport(ls.tasks), edfAnalyze(ls.tasks); got != ref {
		return fmt.Errorf("admission: ledger: link %s cached analysis %+v, edfAnalyze says %+v", k, got, ref)
	}
	return nil
}
