package admission

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
)

// TestAdmitTeardownFuzz runs random interleavings of admissions and
// teardowns and checks the controller's accounting stays consistent:
// after tearing everything down, every router's table is empty, every
// id is free, and the original capacity is available again.
func TestAdmitTeardownFuzz(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := mesh.MustNew(3, 3, router.DefaultConfig())
		c, err := New(n, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var live []*Channel
		for op := 0; op < 120; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				idx := rng.Intn(len(live))
				if err := c.Teardown(live[idx]); err != nil {
					t.Fatalf("seed %d op %d: teardown: %v", seed, op, err)
				}
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			src := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
			nd := 1
			if rng.Intn(4) == 0 {
				nd = 2 + rng.Intn(2)
			}
			var dsts []mesh.Coord
			seen := map[mesh.Coord]bool{src: true}
			for len(dsts) < nd {
				d := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
				if seen[d] {
					break
				}
				seen[d] = true
				dsts = append(dsts, d)
			}
			if len(dsts) == 0 {
				continue
			}
			imin := int64(4 + rng.Intn(28))
			spec := rtc.Spec{
				Imin: imin,
				Smax: 1 + rng.Intn(36),
				D:    int64(5+rng.Intn(20)) * int64(4+rng.Intn(6)),
			}
			if spec.MessageSlots() > spec.Imin {
				continue
			}
			ch, err := c.Admit(src, dsts, spec)
			if err != nil {
				continue // rejections are fine
			}
			live = append(live, ch)
			if op%8 == 0 {
				if err := c.VerifyLedger(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if err := c.VerifyLedger(); err != nil {
			t.Fatalf("seed %d: conservation before drain: %v", seed, err)
		}
		for _, ch := range live {
			if err := c.Teardown(ch); err != nil {
				t.Fatalf("seed %d: final teardown: %v", seed, err)
			}
		}
		if c.Active() != 0 {
			t.Fatalf("seed %d: %d channels still active", seed, c.Active())
		}
		if err := c.VerifyLedger(); err != nil {
			t.Fatalf("seed %d: conservation after drain: %v", seed, err)
		}
		if snap := c.Seal(); len(snap.Links) != 0 || snap.Channels != 0 {
			t.Fatalf("seed %d: drained ledger still holds %d links, %d channels",
				seed, len(snap.Links), snap.Channels)
		}
		// Every router table empty again.
		for _, coord := range n.Coords() {
			r := n.Router(coord)
			for id := 0; id < r.Config().Conns; id++ {
				if r.Connection(uint8(id)).Valid {
					t.Fatalf("seed %d: stale table entry at %s id %d", seed, coord, id)
				}
			}
		}
		// Full capacity restored: the canonical filler fits its EDF bound
		// again on a previously used link.
		filler := rtc.Spec{Imin: 4, Smax: 18, D: 8}
		got := 0
		for {
			if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}}, filler); err != nil {
				break
			}
			got++
		}
		if got != 4 {
			t.Fatalf("seed %d: capacity after churn = %d channels, want 4", seed, got)
		}
	}
}

// TestAdmissionDifferentialFuzz drives a standard controller and a
// Reference-mode shadow (every fast path disabled: no EDF cache, no
// unicast planner, no route memo, no batch speculation) through the same
// random op sequence — admissions, teardowns, reroutes, link
// failures/repairs, and AdmitBatch rounds — and demands identical
// decisions, errors, channel parameters, and sealed ledger bytes
// throughout. This is the oracle for the whole incremental machinery.
func TestAdmissionDifferentialFuzz(t *testing.T) {
	defer func(n int) { batchChunkSize = n }(batchChunkSize)
	batchChunkSize = 8

	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		fast, err := New(mesh.MustNew(4, 4, router.DefaultConfig()), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		refCfg := DefaultConfig()
		refCfg.Reference = true
		ref, err := New(mesh.MustNew(4, 4, router.DefaultConfig()), refCfg)
		if err != nil {
			t.Fatal(err)
		}

		randSpec := func() rtc.Spec {
			return rtc.Spec{
				Imin: int64(4 + rng.Intn(28)),
				Smax: 1 + rng.Intn(36),
				D:    int64(5+rng.Intn(20)) * int64(4+rng.Intn(6)),
			}
		}
		randEndpoints := func() (mesh.Coord, []mesh.Coord) {
			src := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
			nd := 1
			if rng.Intn(5) == 0 {
				nd = 2 + rng.Intn(2)
			}
			var dsts []mesh.Coord
			seen := map[mesh.Coord]bool{src: true}
			for len(dsts) < nd {
				d := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				if seen[d] {
					break
				}
				seen[d] = true
				dsts = append(dsts, d)
			}
			return src, dsts
		}
		sameOutcome := func(op string, fc, rc *Channel, fe, re error) {
			t.Helper()
			if (fe == nil) != (re == nil) {
				t.Fatalf("seed %d %s: fast err=%v, reference err=%v", seed, op, fe, re)
			}
			if fe != nil {
				if fe.Error() != re.Error() {
					t.Fatalf("seed %d %s: fast rejection %q, reference %q", seed, op, fe, re)
				}
				return
			}
			if fc.ID != rc.ID || fc.Margin != rc.Margin || fc.LocalD != rc.LocalD ||
				fc.SrcConn != rc.SrcConn || fc.Route() != rc.Route() {
				t.Fatalf("seed %d %s: fast channel %+v, reference %+v", seed, op, fc, rc)
			}
		}

		var fastLive, refLive []*Channel
		var failedLinks []linkKey
		for op := 0; op < 150; op++ {
			switch k := rng.Intn(10); {
			case k == 0 && len(fastLive) > 0: // teardown
				i := rng.Intn(len(fastLive))
				fe, re := fast.Teardown(fastLive[i]), ref.Teardown(refLive[i])
				if (fe == nil) != (re == nil) {
					t.Fatalf("seed %d op %d teardown: fast %v, reference %v", seed, op, fe, re)
				}
				fastLive = append(fastLive[:i], fastLive[i+1:]...)
				refLive = append(refLive[:i], refLive[i+1:]...)
			case k == 1 && len(fastLive) > 0: // reroute
				i := rng.Intn(len(fastLive))
				fc, fe := fast.Reroute(fastLive[i])
				rc, re := ref.Reroute(refLive[i])
				sameOutcome("reroute", fc, rc, fe, re)
				if fe == nil {
					fastLive[i], refLive[i] = fc, rc
				}
			case k == 2: // flip one link's failure state on both
				lk := linkKey{mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}, router.PortXPlus}
				if rng.Intn(2) == 0 {
					lk.port = router.PortYPlus
				}
				if len(failedLinks) > 0 && rng.Intn(2) == 0 {
					lk = failedLinks[rng.Intn(len(failedLinks))]
					if fast.MarkRepaired(lk.node, lk.port) == nil {
						_ = ref.MarkRepaired(lk.node, lk.port)
					}
				} else if fast.MarkFailed(lk.node, lk.port) == nil {
					_ = ref.MarkFailed(lk.node, lk.port)
					failedLinks = append(failedLinks, lk)
				}
			case k == 3: // AdmitBatch round vs sequential reference loop
				var reqs []Request
				for len(reqs) < 12 {
					src, dsts := randEndpoints()
					if len(dsts) == 0 {
						continue
					}
					reqs = append(reqs, Request{Src: src, Dsts: dsts, Spec: randSpec()})
				}
				res := fast.AdmitBatch(reqs, 1+rng.Intn(4))
				for i, r := range reqs {
					rc, re := ref.Admit(r.Src, r.Dsts, r.Spec)
					sameOutcome("batch", res.Channels[i], rc, res.Errs[i], re)
					if re == nil {
						fastLive = append(fastLive, res.Channels[i])
						refLive = append(refLive, rc)
					}
				}
			default: // single admit
				src, dsts := randEndpoints()
				if len(dsts) == 0 {
					continue
				}
				spec := randSpec()
				fc, fe := fast.Admit(src, dsts, spec)
				rc, re := ref.Admit(src, dsts, spec)
				sameOutcome("admit", fc, rc, fe, re)
				if fe == nil {
					fastLive = append(fastLive, fc)
					refLive = append(refLive, rc)
				}
			}
			if op%10 == 0 {
				if err := fast.VerifyLedger(); err != nil {
					t.Fatalf("seed %d op %d: fast ledger: %v", seed, op, err)
				}
				if err := ref.VerifyLedger(); err != nil {
					t.Fatalf("seed %d op %d: reference ledger: %v", seed, op, err)
				}
				fj, err := json.Marshal(fast.Seal())
				if err != nil {
					t.Fatal(err)
				}
				rj, err := json.Marshal(ref.Seal())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fj, rj) {
					t.Fatalf("seed %d op %d: sealed ledgers diverge:\nfast %s\nref  %s", seed, op, fj, rj)
				}
			}
		}
	}
}
