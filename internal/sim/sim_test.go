package sim

import "testing"

type counter struct {
	name  string
	ticks []Cycle
}

func (c *counter) Name() string   { return c.name }
func (c *counter) Tick(now Cycle) { c.ticks = append(c.ticks, now) }
func (c *counter) count() int     { return len(c.ticks) }
func (c *counter) last() Cycle    { return c.ticks[len(c.ticks)-1] }
func (c *counter) first() Cycle   { return c.ticks[0] }

func TestKernelStepOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	a := &funcComp{"a", func(Cycle) { order = append(order, "a") }}
	b := &funcComp{"b", func(Cycle) { order = append(order, "b") }}
	k.Register(a)
	k.Register(b)
	k.Step()
	k.Step()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 2 {
		t.Errorf("Now() = %d, want 2", k.Now())
	}
}

type funcComp struct {
	name string
	f    func(Cycle)
}

func (f *funcComp) Name() string   { return f.name }
func (f *funcComp) Tick(now Cycle) { f.f(now) }

func TestKernelRun(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	k.Run(10)
	if c.count() != 10 {
		t.Fatalf("ticked %d times, want 10", c.count())
	}
	if c.first() != 0 || c.last() != 9 {
		t.Errorf("tick cycles [%d..%d], want [0..9]", c.first(), c.last())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	ok := k.RunUntil(func() bool { return c.count() >= 5 }, 100)
	if !ok {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if c.count() != 5 {
		t.Errorf("ran %d cycles, want exactly 5", c.count())
	}
	ok = k.RunUntil(func() bool { return c.count() >= 1000 }, 10)
	if ok {
		t.Fatal("RunUntil reported success past budget")
	}
}

func TestRegisterNilPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	k.Register(nil)
}

func TestAddLatchNilPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("AddLatch(nil) did not panic")
		}
	}()
	k.AddLatch(nil)
}

func TestRegWireSemantics(t *testing.T) {
	r := NewReg[int]()
	r.Write(7)
	if got := r.Read(); got != 0 {
		t.Errorf("Read before commit = %d, want 0", got)
	}
	r.Commit()
	if got := r.Read(); got != 7 {
		t.Errorf("Read after commit = %d, want 7", got)
	}
	// No write this cycle: the wire drains.
	r.Commit()
	if got := r.Read(); got != 0 {
		t.Errorf("wire did not drain: Read = %d, want 0", got)
	}
}

func TestRegStickySemantics(t *testing.T) {
	r := NewSticky[string]()
	r.Write("held")
	r.Commit()
	r.Commit()
	r.Commit()
	if got := r.Read(); got != "held" {
		t.Errorf("sticky reg lost value: %q", got)
	}
	r.Write("new")
	r.Commit()
	if got := r.Read(); got != "new" {
		t.Errorf("sticky reg did not update: %q", got)
	}
}

// TestRegOneCycleLatency verifies the defining property of the kernel: a
// value written by component A in cycle c is visible to component B only
// in cycle c+1, regardless of registration order.
func TestRegOneCycleLatency(t *testing.T) {
	for _, producerFirst := range []bool{true, false} {
		k := NewKernel()
		wire := NewReg[int]()
		k.AddLatch(wire)
		var seen []int
		producer := &funcComp{"p", func(now Cycle) { wire.Write(int(now) + 100) }}
		consumer := &funcComp{"c", func(Cycle) { seen = append(seen, wire.Read()) }}
		if producerFirst {
			k.Register(producer)
			k.Register(consumer)
		} else {
			k.Register(consumer)
			k.Register(producer)
		}
		k.Run(3)
		// Cycle 0: consumer sees 0 (nothing latched yet).
		// Cycle 1: sees value produced in cycle 0 (100).
		// Cycle 2: sees value produced in cycle 1 (101).
		want := []int{0, 100, 101}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("producerFirst=%v: seen=%v, want %v", producerFirst, seen, want)
			}
		}
	}
}

func TestKernelString(t *testing.T) {
	k := NewKernel()
	k.Register(&counter{name: "x"})
	k.AddLatch(NewReg[int]())
	k.Step()
	want := "sim.Kernel{cycle=1 components=1 latches=1}"
	if got := k.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
