package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// TestSLOFIFOMissCrossCheck drives a workload that FIFO hardware
// provably cannot serve — a tight-deadline stream sharing its
// bottleneck link with bulky loose-deadline messages (the X2
// comparison recipe) — and cross-checks the three independent miss
// accounts against each other: the routers' hardware
// TCDeadlineMisses counters, the telemetry registry's DeadlineMisses
// total, and the SLO layer's per-channel hop-miss counters with their
// negative-slack histogram buckets.
func TestSLOFIFOMissCrossCheck(t *testing.T) {
	reg := metrics.NewRegistry()
	slo := obs.NewSLO()
	sys, err := NewMesh(3, 1, Options{Router: baseline.FIFOConfig(), Metrics: reg, ChannelSLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	dst := mesh.Coord{X: 2, Y: 0}
	looseSpec := rtc.Spec{Imin: 16, Smax: 90, D: 48}
	tightSpec := rtc.Spec{Imin: 4, Smax: packet.TCPayloadBytes, D: 8}
	open := func(src mesh.Coord, spec rtc.Spec, tag string) *Channel {
		t.Helper()
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		app, err := traffic.NewTCApp(tag, ch.Paced(), spec, traffic.Periodic, spec.Smax)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		sys.RegisterNode(src, app)
		return ch
	}
	open(mesh.Coord{X: 0, Y: 0}, looseSpec, "loose0")
	open(mesh.Coord{X: 0, Y: 0}, looseSpec, "loose1")
	tight := open(mesh.Coord{X: 1, Y: 0}, tightSpec, "tight")

	cycles := int64(60000)
	if testing.Short() {
		cycles = 20000
	}
	sys.Run(cycles)

	var hw int64
	for _, c := range sys.Net.Coords() {
		hw += sys.Router(c).Stats.TCDeadlineMisses
	}
	if hw == 0 {
		t.Fatal("degenerate workload: FIFO scheduling produced no deadline misses")
	}
	if got := reg.Snapshot().Totals.DeadlineMisses; got != hw {
		t.Errorf("registry DeadlineMisses = %d, hardware counters say %d", got, hw)
	}

	var sloHop int64
	for _, ch := range slo.Channels() {
		sloHop += ch.HopMisses()
		// Every hop-level miss is a transmission that started past its
		// per-hop deadline, i.e. with negative slack — the two views of
		// the same event must agree exactly.
		if ch.HopSlack().MissCount() != ch.HopMisses() {
			t.Errorf("channel %q: hop-slack miss bucket %d != hop misses %d",
				ch.Info().Name, ch.HopSlack().MissCount(), ch.HopMisses())
		}
		// Same invariant end to end: a delivery past its deadline is
		// counted once and lands in the slack histogram's miss bucket.
		if ch.Slack().MissCount() != ch.Misses() {
			t.Errorf("channel %q: slack miss bucket %d != deliver misses %d",
				ch.Info().Name, ch.Slack().MissCount(), ch.Misses())
		}
	}
	if sloHop != hw {
		t.Errorf("SLO hop misses %d != hardware TCDeadlineMisses %d", sloHop, hw)
	}

	// The miss pressure must land on the tight stream (the X2 result):
	// under FIFO its packets queue behind 5-packet loose messages.
	ts := tight.SLOStats()
	if ts == nil {
		t.Fatal("tight channel has no SLO stats")
	}
	if ts.Delivered() == 0 || ts.Latency().Count() == 0 {
		t.Fatalf("tight channel recorded no deliveries: %+v", ts.Snapshot())
	}
	if ts.HopMisses() == 0 {
		t.Error("tight channel shows no hop misses under FIFO contention")
	}
}
