// Command rtbench regenerates every table and figure of the paper's
// evaluation, plus the extension studies catalogued in DESIGN.md §4.
//
// Usage:
//
//	rtbench                 # run everything
//	rtbench -exp fig7       # one experiment
//	rtbench -exp e1 -chart  # include ASCII charts where available
//
// Experiments: e1, fig6, fig7, chip, horizon, compare, vct, multicast,
// admit, all; plus cyclerate, which benchmarks the simulator itself
// (sequential vs parallel kernel; -workers, -benchjson).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (e1|fig6|fig7|chip|horizon|compare|approx|vct|multicast|admit|load|skew|failover|ring|sharing|cyclerate|all)")
	cycles := flag.Int64("cycles", 0, "override simulated cycles where applicable (0 = experiment default)")
	chart := flag.Bool("chart", false, "render ASCII charts where available")
	workers := flag.Int("workers", 0, "parallel kernel workers for the cyclerate experiment (0 = GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "write the cyclerate result as JSON to this file (e.g. BENCH_router.json)")
	metricsOut := flag.String("metrics", "", "write aggregate telemetry across all runs to this file (.prom/.txt = Prometheus text, otherwise JSON; - = stdout)")
	listen := flag.String("listen", "", "serve live telemetry over HTTP at this address while experiments run (e.g. :8080)")
	traceOut := flag.String("trace-out", "", "write the merged event timeline across all runs to this file (.json = Chrome trace-event JSON for Perfetto, .jsonl = JSON lines, otherwise the human-readable dump)")
	traceBuf := flag.Int("trace-buf", obs.DefaultShardCap, "per-node event buffer capacity for -trace-out (oldest events evict first)")
	flag.Parse()

	// Experiments build their Systems internally, so telemetry hooks in
	// through the package-level default registry; tracing and SLO
	// accounting hook in the same way. The sharded collector is
	// parallel-safe, so -workers stays honored with tracing on.
	var reg *metrics.Registry
	if *metricsOut != "" || *listen != "" {
		reg = metrics.NewRegistry()
		core.DefaultMetrics = reg
		if *listen != "" {
			go func() {
				if err := http.ListenAndServe(*listen, reg); err != nil {
					fmt.Fprintln(os.Stderr, "rtbench: telemetry listener:", err)
				}
			}()
			fmt.Printf("telemetry: live at http://%s/\n", *listen)
		}
	}
	var col *obs.Sharded
	var slo *obs.SLO
	if *traceOut != "" {
		col = obs.NewSharded(*traceBuf)
		slo = obs.NewSLO()
		core.DefaultCollector = col
		core.DefaultChannelSLO = slo
		ew := *workers
		if ew <= 0 {
			ew = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("tracing: on (per-node buffer %d events; cyclerate runs on %d kernel worker(s))\n", *traceBuf, ew)
	}

	runners := map[string]func() error{
		"e1":        func() error { return runE1() },
		"fig6":      func() error { return runFig6() },
		"fig7":      func() error { return runFig7(*cycles, *chart) },
		"chip":      func() error { return runChip() },
		"horizon":   func() error { return runHorizon(*cycles) },
		"compare":   func() error { return runCompare(*cycles) },
		"vct":       func() error { return runVCT(*cycles) },
		"multicast": func() error { return runMulticast() },
		"admit":     func() error { return runAdmit() },
		"approx":    func() error { return runApprox(*cycles) },
		"load":      func() error { return runLoad(*cycles) },
		"skew":      func() error { return runSkew(*cycles) },
		"failover":  func() error { return runFailover() },
		"ring":      func() error { return runRing(*cycles) },
		"sharing":   func() error { return runSharing(*cycles) },
		"cyclerate": func() error { return runCycleRate(*cycles, *workers, *benchJSON) },
	}
	// cyclerate measures the simulator rather than the paper and is run
	// on request only, not as part of "all".
	order := []string{"e1", "fig7", "fig6", "chip", "horizon", "compare", "approx", "vct", "multicast", "admit", "load", "skew", "failover", "ring", "sharing"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				fatal(name, err)
			}
		}
		dumpTelemetry(reg, *metricsOut)
		dumpTrace(col, slo, *traceOut)
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "rtbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		fatal(*exp, err)
	}
	dumpTelemetry(reg, *metricsOut)
	dumpTrace(col, slo, *traceOut)
}

// dumpTrace exports the merged timeline accumulated across every system
// the experiments built; the extension picks the format.
func dumpTrace(col *obs.Sharded, slo *obs.SLO, path string) {
	if col == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("trace", err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".json"):
		err = obs.WriteChromeTrace(f, col, slo)
	case strings.HasSuffix(path, ".jsonl"):
		err = obs.WriteJSONL(f, col)
	default:
		col.Dump(f)
	}
	if err != nil {
		fatal("trace", err)
	}
	fmt.Printf("trace written to %s (%d events recorded, %d evicted)\n", path, col.Total(), col.Dropped())
}

// dumpTelemetry writes the aggregate registry (counters accumulated
// across every system the experiments built) after the runs finish.
func dumpTelemetry(reg *metrics.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("metrics", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		err = reg.WritePrometheus(w)
	} else {
		err = reg.WriteJSON(w)
	}
	if err != nil {
		fatal("metrics", err)
	}
	if path != "-" {
		fmt.Printf("telemetry report written to %s\n", path)
	}
}

func fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "rtbench: %s: %v\n", name, err)
	os.Exit(1)
}

func runE1() error {
	res, err := experiments.RunE1(router.DefaultConfig(), []int{16, 32, 64, 128, 256, 512, 1024})
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runFig7(cycles int64, chart bool) error {
	cfg := experiments.DefaultFig7()
	if cycles > 0 {
		cfg.Cycles = cycles
	}
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	if chart {
		fmt.Println(res.Chart())
	}
	return nil
}

func runFig6() error {
	res, err := experiments.RunFig6(4)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runChip() error {
	res := experiments.RunChip()
	res.Table().Fprint(os.Stdout)
	res.SharedTable().Fprint(os.Stdout)
	res.ClockTable().Fprint(os.Stdout)
	return nil
}

func runHorizon(cycles int64) error {
	if cycles <= 0 {
		cycles = 60000
	}
	res, err := experiments.RunHorizon([]uint32{0, 2, 4, 8, 16, 32, 48}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runCompare(cycles int64) error {
	if cycles <= 0 {
		cycles = 200000
	}
	res, err := experiments.RunCompare(cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runVCT(cycles int64) error {
	if cycles <= 0 {
		cycles = 100000
	}
	res, err := experiments.RunVCT(3, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	load, err := experiments.RunVCTLoad([]int{0, 1, 2, 4, 6}, cycles)
	if err != nil {
		return err
	}
	load.Table().Fprint(os.Stdout)
	return nil
}

func runMulticast() error {
	res, err := experiments.RunMulticast([]int{1, 2, 4, 8}, 10)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runApprox(cycles int64) error {
	if cycles <= 0 {
		cycles = 120000
	}
	res, err := experiments.RunApprox([]uint{0, 1, 2, 3, 4, 5}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runLoad(cycles int64) error {
	if cycles <= 0 {
		cycles = 60000
	}
	res, err := experiments.RunLoadSweep([]float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runSkew(cycles int64) error {
	if cycles <= 0 {
		cycles = 60000
	}
	res, err := experiments.RunSkew([]int64{-400, -160, -40, 0, 40, 100, 160, 240, 400}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runFailover() error {
	res, err := experiments.RunFailover(8)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runRing(cycles int64) error {
	if cycles <= 0 {
		cycles = 100000
	}
	res, err := experiments.RunRing(8, 8, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runSharing(cycles int64) error {
	if cycles <= 0 {
		cycles = 120000
	}
	res, err := experiments.RunSharing([]int{1, 2, 4, 8, 16, 32}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runCycleRate(cycles int64, workers int, benchJSON string) error {
	res, err := experiments.RunCycleRate(8, 8, cycles, workers)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	if !res.StatsMatch {
		return fmt.Errorf("parallel run diverged from sequential run")
	}
	if benchJSON == "" {
		return nil
	}
	f, err := os.Create(benchJSON)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"benchmark":            "router_cycle_rate",
		"mesh":                 fmt.Sprintf("%dx%d", res.W, res.H),
		"cycles":               res.Cycles,
		"workers":              res.Workers,
		"seq_cycles_per_sec":   res.SeqRate,
		"par_cycles_per_sec":   res.ParRate,
		"speedup":              res.Speedup,
		"seq_allocs_per_cycle": res.SeqAllocsPerCycle,
		"par_allocs_per_cycle": res.ParAllocsPerCycle,
		"stats_match":          res.StatsMatch,
	}); err != nil {
		return err
	}
	fmt.Printf("benchmark result written to %s\n", benchJSON)
	return nil
}

func runAdmit() error {
	res, err := experiments.RunAdmit()
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}
