// Package timing implements the bounded-clock arithmetic at the heart of
// the real-time router's link scheduler.
//
// The router chip keeps an on-chip clock that ticks once per packet
// transmission time (one "slot" = 20 byte cycles in the paper). The clock
// register is deliberately narrow — 8 bits in the ISCA '96 design — so the
// packet sorting keys stay small and the comparator tree stays shallow.
// Logical arrival times and deadlines carried in packet headers are stamps
// on this wrapped clock. Section 4.3 of the paper shows that the router can
// still interpret stamps correctly across clock rollover, provided every
// connection keeps h(j-1)+d(j-1) and d(j) below half the clock range:
// at time t, any live stamp ℓ satisfies ℓ ∈ [t−d(j), t+h(j-1)+d(j-1)],
// a window narrower than half the wheel, so the sign of the modular
// difference disambiguates past from future.
//
// This package provides the Wheel type encapsulating that arithmetic and
// the 9-bit sorting keys of Figure 4:
//
//	on-time packet:  key = 0 ∥ (ℓ+d − t) mod 2^bits   (laxity)
//	early packet:    key = 1 ∥ (ℓ − t)   mod 2^bits   (time until ℓ)
//	ineligible:      key = all ones
//
// Normalizing keys against the current time t lets the rest of the
// comparator tree do plain unsigned comparisons even across rollover.
package timing

import "fmt"

// Slot is an absolute (unwrapped) slot count maintained by the simulation
// harness. The hardware never sees a Slot; it sees Stamps.
type Slot int64

// Stamp is a wrapped slot value as carried in packet headers and scheduler
// leaves. Only the low Wheel.Bits() bits are meaningful.
type Stamp uint32

// Key is a sorting key as computed at the base of the comparator tree:
// Bits()+1 wide, smaller is more urgent. The early/on-time discriminator
// occupies the top bit (Figure 4).
type Key uint32

// Wheel captures the width of the on-chip clock register and performs all
// modular comparisons. The paper's chip uses 8 bits; other widths are
// supported for the key-size/delay-range trade-off studies of Section 4.3.
type Wheel struct {
	bits uint
	mask uint32 // 2^bits − 1
	half uint32 // 2^(bits−1)
}

// NewWheel returns a Wheel with the given clock register width in bits.
// Widths outside [2, 30] are rejected: below 2 the eligibility window is
// degenerate, above 30 Key arithmetic would overflow uint32.
func NewWheel(bits uint) (Wheel, error) {
	if bits < 2 || bits > 30 {
		return Wheel{}, fmt.Errorf("timing: clock width %d bits out of range [2,30]", bits)
	}
	return Wheel{bits: bits, mask: 1<<bits - 1, half: 1 << (bits - 1)}, nil
}

// MustWheel is NewWheel for known-good constant widths.
func MustWheel(bits uint) Wheel {
	w, err := NewWheel(bits)
	if err != nil {
		panic(err)
	}
	return w
}

// Bits returns the clock register width.
func (w Wheel) Bits() uint { return w.bits }

// Range returns the number of distinct stamps, 2^bits.
func (w Wheel) Range() uint32 { return w.mask + 1 }

// HalfRange returns 2^(bits−1), the maximum usable delay window.
func (w Wheel) HalfRange() uint32 { return w.half }

// Wrap converts an absolute slot count to a wrapped stamp.
func (w Wheel) Wrap(s Slot) Stamp {
	return Stamp(uint32(uint64(s)) & w.mask)
}

// Add returns the stamp s advanced by d slots, modulo the wheel.
func (w Wheel) Add(s Stamp, d uint32) Stamp {
	return Stamp((uint32(s) + d) & w.mask)
}

// Sub returns the modular difference (a − b) mod 2^bits.
func (w Wheel) Sub(a, b Stamp) uint32 {
	return (uint32(a) - uint32(b)) & w.mask
}

// Before reports whether stamp a is in the past half-window relative to b:
// (b − a) mod 2^bits < half. Under the paper's window invariant this is
// exactly "a ≤ b in real time".
func (w Wheel) Before(a, b Stamp) bool {
	return w.Sub(b, a) < w.half
}

// OnTime reports whether a packet with logical arrival time l has reached
// it at current time t, i.e. l ≤ t within the rollover window (Figure 6:
// with an 8-bit clock and t = 240, ℓ = 210 is on-time because
// (240−210) mod 256 = 30 < 128, while ℓ = 80 is early because
// (240−80) mod 256 = 160 ≥ 128 — it denotes a *future* arrival at
// 80+256k).
func (w Wheel) OnTime(l, t Stamp) bool {
	return w.Sub(t, l) < w.half
}

// Laxity returns the slots remaining until the deadline dl expires, given
// current time t. If the deadline has already passed (only possible for
// traffic that violated its reservation — the admission controller
// guarantees it cannot happen for admitted connections), Laxity clamps to
// zero so an overdue packet sorts as maximally urgent rather than wrapping
// to the far future. The clamp is a robustness deviation from the paper,
// which assumes admission control; see DESIGN.md §5.
func (w Wheel) Laxity(dl, t Stamp) (lax uint32, overdue bool) {
	d := w.Sub(dl, t)
	if d >= w.half {
		return 0, true
	}
	return d, false
}

// SignedDiff interprets the modular difference (a − b) mod 2^bits as a
// signed distance within the half-range window: differences of half the
// wheel or more denote a past stamp and come back negative. Under the
// Section 4.3 window invariant every live stamp sits within ± half a
// wheel of the current time, so the result is exact. SignedDiff(dl, t)
// is the signed slack against deadline dl at time t — zero means the
// deadline slot itself (still on time), negative means overdue.
func (w Wheel) SignedDiff(a, b Stamp) int64 {
	d := w.Sub(a, b)
	if d >= w.half {
		return int64(d) - int64(w.Range())
	}
	return int64(d)
}

// EarlyGap returns the slots remaining until logical arrival l, for an
// early packet, given current time t.
func (w Wheel) EarlyGap(l, t Stamp) uint32 {
	return w.Sub(l, t)
}

// earlyBit is the key discriminator: early keys sort above every on-time
// key.
func (w Wheel) earlyBit() Key { return Key(w.mask + 1) }

// KeyIneligible is the all-ones key assigned to leaves whose port bit is
// clear (or which are empty). Under the window invariant no real early
// packet can reach gap = 2^bits−1, so the value is unambiguous.
func (w Wheel) KeyIneligible() Key {
	return Key(w.mask) | w.earlyBit()
}

// SortKey computes the Figure 4 sorting key for a leaf with logical
// arrival l and deadline dl at current time t. It also reports the service
// class the key encodes and whether the deadline was already overdue.
func (w Wheel) SortKey(l, dl, t Stamp) (k Key, early bool, overdue bool) {
	if w.OnTime(l, t) {
		lax, over := w.Laxity(dl, t)
		return Key(lax), false, over
	}
	return Key(w.EarlyGap(l, t)) | w.earlyBit(), true, false
}

// IsEarlyKey reports whether key k encodes an early packet.
func (w Wheel) IsEarlyKey(k Key) bool { return k&w.earlyBit() != 0 }

// KeyGap extracts the time component of a key (laxity for on-time keys,
// gap-to-ℓ for early keys).
func (w Wheel) KeyGap(k Key) uint32 { return uint32(k) & w.mask }

// WithinHorizon reports whether an early key falls within horizon h: the
// packet may be transmitted ahead of its logical arrival time when the
// link would otherwise idle (top-of-tree check in Figure 5).
func (w Wheel) WithinHorizon(k Key, h uint32) bool {
	return w.IsEarlyKey(k) && w.KeyGap(k) <= h
}

// ValidDelay reports whether a per-hop delay budget d (or a combined
// h(j-1)+d(j-1) window) respects the rollover constraint of Section 4.3:
// it must be strictly less than half the clock range.
func (w Wheel) ValidDelay(d int64) bool {
	return d >= 0 && uint64(d) < uint64(w.half)
}

// SlotsPerPacket is the number of byte cycles in one slot for the paper's
// 20-byte time-constrained packets at one byte per cycle.
const SlotsPerPacket = 20

// CyclesToSlot converts a byte-cycle count to the slot it falls in, for a
// given packet time in cycles.
func CyclesToSlot(cycle int64, cyclesPerSlot int64) Slot {
	if cyclesPerSlot <= 0 {
		panic("timing: cyclesPerSlot must be positive")
	}
	return Slot(cycle / cyclesPerSlot)
}
