package experiments

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
)

// E1Result is the outcome of the Section 5.2 baseline experiment: the
// end-to-end latency of a b-byte best-effort wormhole packet through the
// single-chip loopback configuration (injection → +x → −x → +y → −y →
// reception). The paper reports latency = 30 + b cycles; the claim under
// reproduction is the *shape* — strictly linear in b with a small
// per-path constant.
type E1Result struct {
	Sizes     []int
	Latencies []int64
	Overhead  int64 // latency − b, identical across sizes when linear
	Linear    bool
}

// RunE1 measures wormhole latency for each packet size (total bytes,
// header included).
func RunE1(cfg router.Config, sizes []int) (*E1Result, error) {
	res := &E1Result{Sizes: sizes}
	for _, b := range sizes {
		if b < packet.BEHeaderBytes+1 {
			return nil, fmt.Errorf("experiments: size %d below header size", b)
		}
		l, err := mesh.NewLoopback(cfg)
		if err != nil {
			return nil, err
		}
		frame, err := packet.NewBE(1, 1, make([]byte, b-packet.BEHeaderBytes))
		if err != nil {
			return nil, err
		}
		l.R.InjectBE(frame)
		if !l.Kernel.RunUntil(func() bool { return l.R.Stats.BEDelivered > 0 }, 1<<20) {
			return nil, fmt.Errorf("experiments: %d-byte packet not delivered", b)
		}
		res.Latencies = append(res.Latencies, l.R.DrainBE()[0].Cycle)
	}
	res.Linear = true
	if len(sizes) > 0 {
		res.Overhead = res.Latencies[0] - int64(sizes[0])
		for i := range sizes {
			if res.Latencies[i]-int64(sizes[i]) != res.Overhead {
				res.Linear = false
			}
		}
	}
	return res, nil
}

// Table renders the experiment next to the paper's reported model.
func (r *E1Result) Table() *Table {
	t := &Table{
		Title:  "E1 — best-effort wormhole baseline (paper §5.2: latency = 30 + b cycles)",
		Header: []string{"bytes b", "latency (cycles)", "latency − b", "paper (30+b)"},
	}
	for i, b := range r.Sizes {
		t.AddRow(di(b), d(r.Latencies[i]), d(r.Latencies[i]-int64(b)), di(30+b))
	}
	if r.Linear {
		t.AddNote("measured model: latency = %d + b cycles (paper: 30 + b); linear shape reproduced", r.Overhead)
	} else {
		t.AddNote("WARNING: latency is not linear in b — wormhole pipelining broken")
	}
	return t
}
