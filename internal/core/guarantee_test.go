package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// TestAdmittedChannelsNeverMissDeadlines is the system's central
// property: for randomized workloads, ANY set of channels the admission
// controller accepts must run with zero deadline misses and zero drops,
// under periodic, bursty and backlogged sources, with best-effort
// background traffic trying to get in the way. This is the paper's
// end-to-end guarantee (Section 2) checked against the cycle-accurate
// hardware model rather than the analysis.
func TestAdmittedChannelsNeverMissDeadlines(t *testing.T) {
	patterns := []traffic.TCPattern{traffic.Periodic, traffic.Bursty, traffic.Backlogged}
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) + 100))
			w, h := 2+rng.Intn(3), 2+rng.Intn(3)
			rcfg := router.DefaultConfig()
			// The guarantee must also hold with the §7 cut-through
			// extension and the structural tree driving the chips.
			rcfg.VCT = trial%2 == 1
			if trial%3 == 2 {
				rcfg.Scheduler = router.SchedTournament
			}
			sys, err := NewMesh(w, h, Options{Router: rcfg}.WithAdmission(admission.Config{
				Policy:       admission.Partitioned,
				SourceWindow: int64(rng.Intn(12)),
				Horizon:      uint32(rng.Intn(16)),
			}))
			if err != nil {
				t.Fatal(err)
			}
			// Throw random channel requests at the controller; keep
			// whatever it admits.
			opened := 0
			for i := 0; i < 25; i++ {
				src := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				dst := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				if src == dst {
					continue
				}
				imin := int64(4 + rng.Intn(28))
				// 1-2 packets, with room for the latency probe.
				smax := traffic.ProbeBytes + rng.Intn(2*packet.TCPayloadBytes-traffic.ProbeBytes)
				if int64((smax+packet.TCPayloadBytes-1)/packet.TCPayloadBytes) > imin {
					continue
				}
				dist := int64(abs(dst.X-src.X) + abs(dst.Y-src.Y) + 1)
				spec := rtc.Spec{
					Imin: imin,
					Smax: smax,
					Bmax: rng.Intn(3),
					D:    dist * (imin + int64(rng.Intn(10))),
				}
				ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
				if err != nil {
					continue // rejection is always allowed
				}
				pat := patterns[rng.Intn(len(patterns))]
				app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, pat, smax)
				if err != nil {
					t.Fatal(err)
				}
				sys.Net.Kernel.Register(app)
				opened++
			}
			if opened == 0 {
				t.Skip("controller admitted nothing for this seed")
			}
			// Best-effort background from every node.
			for i, c := range sys.Net.Coords() {
				app, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
					traffic.UniformDst(sys.Net, c), traffic.UniformSize(16, 300),
					0.3, int64(trial*100+i))
				if err != nil {
					t.Fatal(err)
				}
				sys.Net.Kernel.Register(app)
			}
			sys.Run(30000)
			sum := sys.Summarize()
			if sum.TCMisses != 0 {
				t.Errorf("%d channels, %dx%d mesh: %d deadline misses (delivered %d)",
					opened, w, h, sum.TCMisses, sum.TCDelivered)
			}
			if sum.TCDrops != 0 {
				t.Errorf("drops on admitted traffic: %d", sum.TCDrops)
			}
			if sum.TCDelivered == 0 {
				t.Error("nothing delivered")
			}
			// The network must not wedge: BE flows too.
			if sum.BEDelivered == 0 {
				t.Error("best-effort background starved entirely")
			}
		})
	}
}

// TestNoResourceLeaksAfterDrain checks conservation: once sources stop
// and the network drains, every packet-memory slot is back in the idle
// FIFO and every scheduler leaf is free, on every router.
func TestNoResourceLeaksAfterDrain(t *testing.T) {
	sys := MustNewMesh(3, 3, Options{})
	rng := rand.New(rand.NewSource(7))
	var chans []*Channel
	for i := 0; i < 10; i++ {
		src := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
		dst := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
		if src == dst {
			continue
		}
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst},
			rtc.Spec{Imin: 8, Smax: 30, D: 80})
		if err != nil {
			continue
		}
		chans = append(chans, ch)
	}
	if len(chans) == 0 {
		t.Fatal("nothing admitted")
	}
	for round := 0; round < 5; round++ {
		for _, ch := range chans {
			if err := ch.Send(make([]byte, 30)); err != nil {
				t.Fatal(err)
			}
		}
		sys.Run(8 * packet.TCBytes)
	}
	sys.Run(100 * packet.TCBytes) // drain
	for _, c := range sys.Net.Coords() {
		r := sys.Router(c)
		if r.FreeSlots() != r.Config().Slots {
			t.Errorf("router %s leaked %d memory slots", c, r.Config().Slots-r.FreeSlots())
		}
		if occ := r.Scheduler().Occupancy(); occ != 0 {
			t.Errorf("router %s has %d leaves still occupied", c, occ)
		}
	}
	// Conservation: everything sent was delivered (5 rounds × 2 packets
	// per 30-byte message × channels).
	want := int64(5 * 2 * len(chans))
	if got := sys.Summarize().TCDelivered; got != want {
		t.Errorf("delivered %d packets, want %d", got, want)
	}
}

// TestTeardownMidTrafficStopsDelivery closes a channel, then confirms
// in-flight teardown behaves: subsequent injections drop at the source
// router (no route), and no misses are charged against other channels.
func TestTeardownMidTrafficStopsDelivery(t *testing.T) {
	sys := MustNewMesh(2, 2, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 1}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 60}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("a")); err != nil {
		t.Fatal(err)
	}
	sys.Run(spec.D * packet.TCBytes * 2)
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	before := sys.Summarize().TCDelivered
	// The closed channel's regulator handle refuses further messages.
	if err := ch.Send([]byte("b")); err == nil {
		t.Error("send on a closed channel accepted")
	}
	if err := keep.Send([]byte("c")); err != nil {
		t.Fatal(err)
	}
	sys.Run(spec.D * packet.TCBytes * 2)
	sum := sys.Summarize()
	if sum.TCDelivered != before+1 {
		t.Errorf("delivered %d new packets, want 1 (only the live channel)", sum.TCDelivered-before)
	}
	if sum.TCMisses != 0 {
		t.Errorf("misses charged to live traffic: %d", sum.TCMisses)
	}
	_ = router.PortLocal
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
