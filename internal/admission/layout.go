package admission

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sched"
)

// PlanSpec is an explicit channel layout: a concrete unicast route and
// a per-hop delay split, both chosen by the caller instead of the
// default planner. It is the admission-control face of the layout
// synthesizer (internal/layout): the synthesizer searches over routes
// and splits, and every candidate it settles on goes through exactly
// the same schedulability, buffer, rollover, and identifier checks as
// a default admission — just with the two degrees of freedom the paper
// leaves open (route selection and the decomposition of D into d_j)
// supplied explicitly.
type PlanSpec struct {
	Src, Dst mesh.Coord
	Spec     rtc.Spec
	// Route is the port sequence from Src, one entry per traversed
	// router, ending with PortLocal at Dst — the same shape
	// mesh.XYRoute produces. It must be a simple (loop-free) path.
	Route []int
	// DSplit is the per-hop delay bound d_j, parallel to Route (source
	// router first). Each d_j must cover the message service time, fit
	// the rollover constraints, and the split must sum to at most
	// Spec.D.
	DSplit []int64
}

// PlanLayout runs admission phase 1 for an explicit layout without
// mutating any controller state, returning the admission margin the
// layout would be granted. It is the synthesizer's what-if probe: a
// rejection carries the same typed Rejection (binding resource,
// failing test, margin, router) an Admit rejection would, which is
// exactly the feedback the greedy-plus-repair loop steers by.
func (c *Controller) PlanLayout(ps PlanSpec) (int64, error) {
	p, err := c.planLayout(ps, &c.sc)
	if err != nil {
		return 0, err
	}
	return p.margin, nil
}

// AdmitLayout establishes a channel along an explicit layout, or
// explains why it cannot. It shares phase 2 (commitPlan) with the
// default planners, so the ledger, the routers' connection tables, and
// teardown/restore treat a layout channel identically to a default one
// — the only differences are the caller-chosen route, the per-hop
// deadlines, and the audit op "admit_layout".
func (c *Controller) AdmitLayout(ps PlanSpec) (*Channel, error) {
	ch, err := c.admitLayout(ps)
	c.recordLayout(ps, ch, err)
	return ch, err
}

func (c *Controller) admitLayout(ps PlanSpec) (*Channel, error) {
	p, err := c.planLayout(ps, &c.sc)
	if err != nil {
		return nil, err
	}
	return c.commitPlan(p)
}

// recordLayout is recordAdmit for the layout entry point; the op name
// keeps layout decisions distinguishable in the audit trail while the
// record shape (and the byte-identity machinery around it) stays the
// same.
func (c *Controller) recordLayout(ps PlanSpec, ch *Channel, err error) {
	if err != nil {
		c.stats.rejects.Add(1)
	} else {
		c.stats.admits.Add(1)
	}
	if c.audit == nil {
		return
	}
	srcName := ps.Src.String()
	shard := 0
	if c.net.Contains(ps.Src) {
		srcName = c.nodeName(ps.Src)
		shard = c.net.Shard(ps.Src)
	}
	dstName := ps.Dst.String()
	if c.net.Contains(ps.Dst) {
		dstName = c.nodeName(ps.Dst)
	}
	rec := obs.AuditRecord{
		Op: "admit_layout", Channel: -1,
		Src: srcName, Dst: dstName, Spec: c.specStr(ps.Spec),
	}
	if err != nil {
		rec.Outcome = "rejected"
		rec.Err = err.Error()
		if rej, ok := Explain(err); ok {
			rec.Binding = rej.BindingResource()
			rec.Test = rej.FailingTest()
			rec.Margin = rej.FailMargin()
			rec.Router = rej.Router()
		}
	} else {
		rec.Outcome = "admitted"
		rec.Channel = ch.ID
		rec.Route = ch.Route()
		rec.DSplit = dsplitString(ch.DSplit)
		rec.Hops = ch.Hops()
		rec.Margin = float64(ch.Margin)
	}
	c.audit.Record(shard, rec)
}

// layoutCoords fills the scratch coordinate buffer with the routers a
// route visits, source first.
func (sc *evalScratch) layoutCoords(src mesh.Coord, route []int) []mesh.Coord {
	coords := sc.coords[:0]
	at := src
	for _, port := range route {
		coords = append(coords, at)
		if port != router.PortLocal {
			at = at.Add(port)
		}
	}
	sc.coords = coords
	return coords
}

// planLayout validates an explicit layout and runs the full phase-1
// resource check against it. The per-hop checks mirror planUnicast
// decision for decision — same check order, same typed errors, same
// buffer-bound recurrence — except that each hop uses its own d_j:
// the hop's link tasks carry deadline d_j, and the buffer bound at hop
// j sees prev = SourceWindow at the source and Horizon + d_{j-1}
// downstream (Section 4.3's h+d with the upstream hop's actual bound).
func (c *Controller) planLayout(ps PlanSpec, sc *evalScratch) (*admitPlan, error) {
	spec := ps.Spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !c.net.Contains(ps.Src) {
		return nil, fmt.Errorf("admission: source %s outside mesh", ps.Src)
	}
	if !c.net.Contains(ps.Dst) {
		return nil, fmt.Errorf("admission: destination %s outside mesh", ps.Dst)
	}
	n := len(ps.Route)
	if n == 0 {
		return nil, fmt.Errorf("admission: layout: empty route")
	}
	if len(ps.DSplit) != n {
		return nil, fmt.Errorf("admission: layout: %d delay bounds for a %d-hop route", len(ps.DSplit), n)
	}

	// Walk the route once up front: every coordinate visited exactly
	// once, links stay inside the mesh, and the path terminates with a
	// local delivery at the destination.
	at := ps.Src
	for i, port := range ps.Route {
		if i == n-1 {
			if port != router.PortLocal {
				return nil, fmt.Errorf("admission: layout: route must end with local delivery, got %s", router.PortName(port))
			}
			if at != ps.Dst {
				return nil, fmt.Errorf("admission: layout: route ends at %s, not %s", at, ps.Dst)
			}
			break
		}
		if port < 0 || port >= router.NumLinks {
			return nil, fmt.Errorf("admission: layout: hop %d uses port %s, not a link", i, router.PortName(port))
		}
		next := at.Add(port)
		if !c.net.Contains(next) {
			return nil, fmt.Errorf("admission: layout: route leaves the mesh at %s via %s", at, router.PortName(port))
		}
		at = next
	}
	// Loop-freedom: a simple path in a mesh revisits a router only if
	// some prefix returns to it; checking pairwise is O(n²) but n is a
	// Manhattan path length, and this runs once per probe.
	visited := sc.layoutCoords(ps.Src, ps.Route)
	for i := 1; i < len(visited); i++ {
		for j := 0; j < i; j++ {
			if visited[i] == visited[j] {
				return nil, fmt.Errorf("admission: layout: route revisits %s", visited[i])
			}
		}
	}

	// Delay-split constraints: every hop's bound covers the message
	// service time, respects the rollover window (what the downstream
	// hop can see early is window+d_0 at the source, h+d_j elsewhere),
	// and the split spends no more than the end-to-end budget.
	wheel := c.node(ps.Src).wheel
	slots := spec.MessageSlots()
	var sum int64
	for j, d := range ps.DSplit {
		if d < slots {
			return nil, fmt.Errorf("admission: layout: hop %d bound %d below message service time %d", j, d, slots)
		}
		if !wheel.ValidDelay(int64(c.cfg.Horizon) + d) {
			return nil, fmt.Errorf("admission: horizon %d + d %d exceeds half clock range", c.cfg.Horizon, d)
		}
		sum += d
	}
	if !wheel.ValidDelay(c.cfg.SourceWindow + ps.DSplit[0]) {
		return nil, fmt.Errorf("admission: source window %d + d %d exceeds half clock range",
			c.cfg.SourceWindow, ps.DSplit[0])
	}
	if sum > spec.D {
		return nil, fmt.Errorf("admission: layout: split sums to %d, over the end-to-end bound %d", sum, spec.D)
	}

	// Schedulability and buffers, hop by hop. The injection pseudo-link
	// carries the source hop's deadline; each mesh link its own hop's.
	newTask := task{C: slots, T: spec.Imin, D: ps.DSplit[0]}
	injKey := linkKey{ps.Src, portInject}
	rep := c.linkCheckIn(injKey, newTask, sc)
	if !rep.feasible {
		return nil, overloadError(c.linkName(injKey), c.nodeName(injKey.node), rep, true)
	}
	margin := rep.headroom
	hops := sc.hops[:0]
	at = ps.Src
	for i, port := range ps.Route {
		d := ps.DSplit[i]
		hopTask := newTask
		hopTask.D = d
		key := linkKey{at, port}
		rep := c.linkCheckIn(key, hopTask, sc)
		if !rep.feasible {
			sc.hops = hops
			return nil, overloadError(c.linkName(key), c.nodeName(at), rep, false)
		}
		if rep.headroom < margin {
			margin = rep.headroom
		}
		prev := c.cfg.SourceWindow
		if i > 0 {
			prev = int64(c.cfg.Horizon) + ps.DSplit[i-1]
		}
		need := rtc.BufferBound(prev, d, spec)
		mask := sched.PortMask(1) << port
		if err := c.buffersFit(at, mask, need); err != nil {
			sc.hops = hops
			return nil, err
		}
		hops = append(hops, planHop{node: at, mask: mask, buffers: need, d: d})
		if port != router.PortLocal {
			at = at.Add(port)
		}
	}
	sc.hops = hops
	// LocalD stays zero on a layout plan: the channel's delay structure
	// lives in DSplit, and commitPlan copies both through verbatim.
	p := &admitPlan{src: ps.Src, dsts: []mesh.Coord{ps.Dst}, spec: spec, task: newTask, margin: margin}
	p.dsplit = append([]int64(nil), ps.DSplit...)
	p.hops = make([]planHop, len(hops))
	copy(p.hops, hops)

	// Identifier assignment walks the path exactly like planUnicast:
	// the source picks its lowest free id, each hop hands the next
	// router's lowest free id downstream, and the delivery id avoids
	// the id it arrives on.
	conns := c.node(ps.Src).conns
	cur, ok := firstFreeID(c.node(ps.Src), conns, -1)
	if !ok {
		return nil, &ErrIDExhausted{
			Node: ps.Src.String(),
			msg:  fmt.Sprintf("admission: %s out of connection identifiers", ps.Src),
		}
	}
	p.srcIn = cur
	for i, port := range ps.Route {
		h := &p.hops[i]
		h.in = cur
		var out uint8
		if port == router.PortLocal {
			out, ok = firstFreeID(c.node(h.node), conns, int(cur))
		} else {
			out, ok = firstFreeID(c.node(h.node.Add(port)), conns, -1)
		}
		if !ok {
			return nil, &ErrIDExhausted{
				Node: h.node.String(), Common: true,
				msg: fmt.Sprintf("admission: no common free id across children of %s", h.node),
			}
		}
		h.out = out
		cur = out
	}
	p.dstConn = []uint8{p.hops[n-1].out}
	return p, nil
}
