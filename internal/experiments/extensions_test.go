package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig6(t *testing.T) {
	res, err := RunFig6(3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's worked example.
	byStamp := map[uint8]string{}
	for i, s := range res.Stamps {
		byStamp[s] = res.Classes[i]
	}
	if byStamp[210] != "on-time" {
		t.Errorf("ℓ=210 classified %q, paper says on-time", byStamp[210])
	}
	if byStamp[80] != "early" {
		t.Errorf("ℓ=80 classified %q, paper says early", byStamp[80])
	}
	// Soak across three full clock wraps: every packet on time.
	if res.Misses != 0 {
		t.Errorf("misses across rollover: %d", res.Misses)
	}
	// 3 wraps × 256 slots at Imin=8 → ≈96 messages.
	if res.Delivered < 90 {
		t.Errorf("delivered %d packets, want ≈96", res.Delivered)
	}
	if _, err := RunFig6(0); err == nil {
		t.Error("zero wraps accepted")
	}
}

func TestRunChip(t *testing.T) {
	res := RunChip()
	if len(res.Costs) == 0 {
		t.Fatal("no cost rows")
	}
	found := false
	for _, c := range res.Costs {
		if c.Leaves == 256 {
			found = true
			if c.Comparators != 255 || c.Levels != 8 || c.KeyBits != 9 {
				t.Errorf("paper chip point wrong: %+v", c)
			}
		}
	}
	if !found {
		t.Error("paper's 256-leaf point missing")
	}
	if res.SelectNsPerOp <= 0 {
		t.Error("selection cost not measured")
	}
	var buf bytes.Buffer
	res.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "2 pipeline stages") {
		t.Error("table missing pipeline note")
	}
}

// TestRunHorizon checks the trade-off direction: latency falls and the
// reserved buffer bound grows as the horizon widens.
func TestRunHorizon(t *testing.T) {
	res, err := RunHorizon([]uint32{0, 16, 48}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("misses in horizon sweep: %d", res.Misses)
	}
	if !(res.MeanLat[0] > res.MeanLat[1] && res.MeanLat[1] > res.MeanLat[2]) {
		t.Errorf("latency not decreasing with horizon: %v", res.MeanLat)
	}
	if !(res.BufBound[0] < res.BufBound[2]) {
		t.Errorf("buffer bound not increasing with horizon: %v", res.BufBound)
	}
	for i, n := range res.Delivered {
		if n == 0 {
			t.Errorf("horizon %d delivered nothing", res.Horizons[i])
		}
	}
	if _, err := RunHorizon(nil, 100); err == nil {
		t.Error("empty sweep accepted")
	}
}

// TestRunCompare checks the headline qualitative contrast: the
// deadline-driven router protects the tight stream while FIFO hardware
// misses a substantial fraction of its deadlines under the same load.
func TestRunCompare(t *testing.T) {
	res, err := RunCompare(60000)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range res.Disciplines {
		idx[n] = i
	}
	edf, fifo := idx["real-time (EDF)"], idx["FIFO output-queued"]
	if res.TightMiss[edf] != 0 {
		t.Errorf("EDF tight miss rate %.2f, want 0", res.TightMiss[edf])
	}
	if res.TightMiss[fifo] < 0.05 {
		t.Errorf("FIFO tight miss rate %.3f; expected substantial misses behind bulky messages",
			res.TightMiss[fifo])
	}
	if res.TightMean[edf] >= res.TightMean[fifo] {
		t.Errorf("EDF tight mean %.0f not below FIFO %.0f", res.TightMean[edf], res.TightMean[fifo])
	}
	// Priority-aware designs also protect the tight stream.
	for _, name := range []string{"static priority", "priority-forwarding", "priority-VC wormhole"} {
		if res.TightMiss[idx[name]] > 0.02 {
			t.Errorf("%s tight miss rate %.3f; priorities should protect it", name, res.TightMiss[idx[name]])
		}
	}
	// Everyone delivered a comparable volume.
	for i, n := range res.TightN {
		if n < 100 {
			t.Errorf("%s observed only %d tight packets", res.Disciplines[i], n)
		}
	}
	if _, err := RunCompare(10); err == nil {
		t.Error("tiny cycle budget accepted")
	}
}

func TestRunVCT(t *testing.T) {
	res, err := RunVCT(3, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saving <= 0 {
		t.Errorf("VCT saving %.1f cycles; expected an improvement", res.Saving)
	}
	if res.CutFraction <= 0 {
		t.Error("no cut-throughs recorded")
	}
	if res.Misses != 0 {
		t.Errorf("misses: %d", res.Misses)
	}
	if _, err := RunVCT(0, 100); err == nil {
		t.Error("invalid hops accepted")
	}
}

func TestRunMulticast(t *testing.T) {
	res, err := RunMulticast([]int{2, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Fanouts {
		if res.Delivered[i] != res.Expected[i] {
			t.Errorf("fan-out %d: delivered %d, want %d",
				res.Fanouts[i], res.Delivered[i], res.Expected[i])
		}
		if res.MaxLat[i] > res.Bound[i] {
			t.Errorf("fan-out %d: worst latency %.0f beyond budget %.0f",
				res.Fanouts[i], res.MaxLat[i], res.Bound[i])
		}
	}
	if res.Misses != 0 || res.SlotLeaks != 0 {
		t.Errorf("misses=%d leaks=%d", res.Misses, res.SlotLeaks)
	}
	if _, err := RunMulticast(nil, 1); err == nil {
		t.Error("empty fanouts accepted")
	}
	if _, err := RunMulticast([]int{99}, 1); err == nil {
		t.Error("oversized fanout accepted")
	}
}

func TestRunAdmit(t *testing.T) {
	res, err := RunAdmit()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 2 {
		t.Fatalf("policies: %v", res.Policies)
	}
	// Under the asymmetric load, the shared pool must admit at least as
	// many channels as partitioning — that is the Section 3.4 trade-off.
	if res.Asymmetric[1] <= res.Asymmetric[0] {
		t.Errorf("shared (%d) not above partitioned (%d) under asymmetric load",
			res.Asymmetric[1], res.Asymmetric[0])
	}
	for i := range res.Policies {
		if res.Symmetric[i] == 0 || res.Asymmetric[i] == 0 {
			t.Errorf("policy %s admitted nothing", res.Policies[i])
		}
	}
}

func TestRunChipExtendedTables(t *testing.T) {
	res := RunChip()
	if len(res.Shared) == 0 || len(res.ClockTradeoffs) == 0 {
		t.Fatal("extended cost tables empty")
	}
	// Sharing factor 4 at 256 packets: 64 modules, 63 comparators.
	for _, c := range res.Shared {
		if c.LeavesPerModule == 4 && (c.Modules != 64 || c.Comparators != 63) {
			t.Errorf("shared point wrong: %+v", c)
		}
	}
	// The paper's 8-bit clock supports h+d up to 127 slots.
	last := res.ClockTradeoffs[len(res.ClockTradeoffs)-1]
	if last.Bits != 8 || last.MaxD != 127 {
		t.Errorf("clock point wrong: %+v", last)
	}
	var buf bytes.Buffer
	res.SharedTable().Fprint(&buf)
	res.ClockTable().Fprint(&buf)
	if !strings.Contains(buf.String(), "serial scans") {
		t.Error("shared table missing")
	}
}

// TestRunFailover checks the three-phase resilience shape: full
// delivery, blackhole with accounted drops, full delivery again after
// the disjoint-route re-establishment.
func TestRunFailover(t *testing.T) {
	res, err := RunFailover(5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RerouteOK {
		t.Fatal("reroute did not leave the failed link")
	}
	if res.Delivered[0] != 5 || res.Misses[0] != 0 {
		t.Errorf("healthy phase: %+v", res)
	}
	if res.Delivered[1] != 0 || res.Drops[1] == 0 {
		t.Errorf("failed phase should blackhole with drops: delivered=%d drops=%d",
			res.Delivered[1], res.Drops[1])
	}
	if res.Delivered[2] != 5 || res.Misses[2] != 0 {
		t.Errorf("recovered phase: delivered=%d misses=%d", res.Delivered[2], res.Misses[2])
	}
	if _, err := RunFailover(0); err == nil {
		t.Error("zero messages accepted")
	}
}

// TestRunFaults checks the X10 campaign shape: the invariants are
// enforced inside RunFaults itself (conservation, zero misses, zero
// leaked slots), so success plus non-vacuity is the whole contract.
func TestRunFaults(t *testing.T) {
	res, err := RunFaults(12, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("sweep too small: %d rows", len(res.Rows))
	}
	base := res.Rows[0]
	if base.Rate != 0 || base.TCDelivered != base.TCSent || base.BENacks != 0 {
		t.Errorf("faultless baseline degraded: %+v", base)
	}
	var bitten, healed bool
	for _, row := range res.Rows[1:] {
		if row.Corrupted+row.Lost > 0 {
			bitten = true
		}
		if row.BERetrans > 0 {
			healed = true
		}
	}
	if !bitten || !healed {
		t.Errorf("vacuous sweep: bitten=%v healed=%v", bitten, healed)
	}
	if !res.FlapRerouted || !res.FlapFailback {
		t.Errorf("flap recovery incomplete: %+v", res)
	}
	if res.TimeToRecover <= 0 {
		t.Errorf("no recovery time measured: %d", res.TimeToRecover)
	}
	if _, err := RunFaults(1, 1); err == nil {
		t.Error("degenerate message count accepted")
	}
}

// TestRunRing checks the topology-independence claim: every channel on
// an 8-node ring meets its deadline using nothing but connection
// tables.
func TestRunRing(t *testing.T) {
	res, err := RunRing(8, 8, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("misses on the ring: %d", res.Misses)
	}
	if res.Delivered < res.Expected {
		t.Errorf("delivered %d, expected at least %d", res.Delivered, res.Expected)
	}
	if res.MaxLat <= 0 || res.MaxLat > res.Budget {
		t.Errorf("worst latency %.0f outside (0, %.0f]", res.MaxLat, res.Budget)
	}
	if _, err := RunRing(2, 8, 1000); err == nil {
		t.Error("degenerate ring accepted")
	}
	if _, err := RunRing(8, 40, 1000); err == nil {
		t.Error("rollover-violating budget accepted")
	}
	if _, err := RunRing(8, 8, 0); err == nil {
		t.Error("zero cycles accepted")
	}
}

// TestRunSharing checks the §5.1 trade-off direction: no misses at the
// paper's factor 1; degradation once serialization outgrows the tight
// stream's slack; comparator counts shrinking with the factor.
func TestRunSharing(t *testing.T) {
	res, err := RunSharing([]int{1, 4, 32}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TightMiss[0] != 0 {
		t.Errorf("factor 1 tight miss %.3f, want 0", res.TightMiss[0])
	}
	if !(res.Comparators[0] > res.Comparators[1] && res.Comparators[1] > res.Comparators[2]) {
		t.Errorf("comparators not shrinking: %v", res.Comparators)
	}
	if res.TightP99[2] <= res.TightP99[0] {
		t.Errorf("heavy sharing did not slow the tight stream: %v", res.TightP99)
	}
	if _, err := RunSharing(nil, 40000); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunSharing([]int{0}, 40000); err == nil {
		t.Error("zero factor accepted")
	}
}

// TestRunVCTLoad checks the X3b shape: cut fraction falls with
// time-constrained contention while deadlines hold.
func TestRunVCTLoad(t *testing.T) {
	res, err := RunVCTLoad([]int{0, 4}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("misses under load: %d", res.Misses)
	}
	if res.CutFraction[0] < 0.9 {
		t.Errorf("idle-line cut fraction %.2f, want ≈1", res.CutFraction[0])
	}
	if res.CutFraction[1] >= res.CutFraction[0]*0.9 {
		t.Errorf("cut fraction did not fall with TC contention: %v", res.CutFraction)
	}
	if _, err := RunVCTLoad(nil, 100); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunVCTLoad([]int{9}, 100); err == nil {
		t.Error("oversized cross count accepted")
	}
}
