package router

import (
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/timing"
)

// LifecycleKind classifies one step in a packet's life inside a router.
// Together the kinds let a per-hop timeline — the logical-arrival ℓ_j
// chain of the paper — be reconstructed from a recorded event stream
// (see trace.Timeline).
type LifecycleKind uint8

const (
	// EvInject: the local processor handed a time-constrained packet to
	// the injection port.
	EvInject LifecycleKind = iota
	// EvEnqueue: a packet finished its memory write and its scheduling
	// leaf was installed (visible to the comparator tree).
	EvEnqueue
	// EvArbWin: output-port arbitration selected the packet for
	// transmission (Class says on-time or early).
	EvArbWin
	// EvTransmit: the packet's head byte left the output port.
	EvTransmit
	// EvCutThrough: a virtual cut-through path was established and the
	// packet will bypass the packet memory (§7).
	EvCutThrough
	// EvBlock: an output port began stalling a best-effort flit for
	// lack of downstream credits (one event per stall episode).
	EvBlock
	// EvDrop: the packet was discarded; Reason says why.
	EvDrop
	// EvDeliver: the packet was handed to the local processor.
	EvDeliver
	// EvStall: a slack-attribution episode closed — a run of consecutive
	// cycles one victim packet spent not advancing on a port for one
	// cause. InConn is the victim, OutConn the blamed connection (zero
	// for subsystem causes), Wait the episode length in cycles, and
	// Cycle the end-exclusive boundary: the episode covered cycles
	// [Cycle-Wait, Cycle-1]. Emitted only when blame collection is
	// enabled (see blame.go).
	EvStall
)

func (k LifecycleKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvEnqueue:
		return "enqueue"
	case EvArbWin:
		return "arb-win"
	case EvTransmit:
		return "transmit"
	case EvCutThrough:
		return "cut-through"
	case EvBlock:
		return "block"
	case EvDrop:
		return "drop"
	case EvDeliver:
		return "deliver"
	case EvStall:
		return "stall"
	default:
		return "lifecycle(?)"
	}
}

// LifecycleEvent is one observation from the router core, reported
// through Router.OnLifecycle. The hook fires only for packet-level
// events (never per byte), so a recorder sees a bounded stream even
// under saturation.
type LifecycleEvent struct {
	Kind   LifecycleKind
	Cycle  int64
	Router string
	// Port is the output port involved, or -1 when the event is not
	// port-specific (inject, enqueue, deliver).
	Port int
	// InConn is the connection id the packet carried on arrival at this
	// router; OutConn the rewritten id for the next hop (zero when
	// unknown, e.g. drops before table lookup).
	InConn  uint8
	OutConn uint8
	Class   sched.Class
	Missed  bool
	// Wait is cycles from leaf install to transmission start (transmit
	// events from the memory path only).
	Wait int64
	// Stamp is the wrapped slot-clock stamp the event was measured
	// against: the per-hop deadline ℓ+d for enqueue/arb-win/transmit/
	// cut-through, the delivery deadline carried in the header for
	// deliver, and the logical arrival time ℓ0 for inject. Zero for
	// best-effort and drop events.
	Stamp timing.Stamp
	// Slack is the signed slot distance from the current slot time to
	// Stamp (timing.Wheel.SignedDiff): positive = slots to spare, zero =
	// the deadline slot itself (still on time), negative = overdue. For
	// inject events it is the gap to ℓ0 instead (positive = early).
	Slack int64
	// Reason is valid for EvDrop.
	Reason metrics.DropReason
	// Cause is valid for EvStall: why the victim failed to advance.
	Cause StallCause
	// BE marks best-effort events (block, drop, deliver); connection
	// ids are meaningless for them.
	BE bool
}

// AttachMetrics points the router's hot-path instrumentation at a
// telemetry block, typically reg.Router(name). Attach nil to detach;
// every update site is nil-guarded so a detached router pays only a
// pointer test per event.
func (r *Router) AttachMetrics(m *metrics.RouterMetrics) { r.met = m }

// Metrics returns the attached telemetry block, or nil.
func (r *Router) Metrics() *metrics.RouterMetrics { return r.met }

// lifecycle fires the OnLifecycle hook with router identity and the
// current cycle filled in. Callers must have checked the hook is set.
func (r *Router) lifecycle(e LifecycleEvent) {
	e.Cycle = r.nowCycle
	e.Router = r.name
	r.OnLifecycle(e)
}

// arbClass maps a scheduler class to its metrics label.
func arbClass(c sched.Class) metrics.ArbClass {
	if c == sched.ClassEarly {
		return metrics.ArbEarly
	}
	return metrics.ArbOnTime
}

// noteMemOccupancy refreshes the packet-memory occupancy gauge and its
// high-water mark after an allocation or free.
func (r *Router) noteMemOccupancy() {
	if r.met == nil {
		return
	}
	occ := int64(r.cfg.Slots - r.mem.freeSlots())
	r.met.MemOccupancy.Set(occ)
	r.met.MemHighWater.SetMax(occ)
}

// noteSchedOccupancy refreshes the scheduling-leaf occupancy gauge and
// its peak, once per scheduler beat.
func (r *Router) noteSchedOccupancy() {
	if r.met == nil {
		return
	}
	occ := int64(r.schedq.Occupancy())
	r.met.SchedOccupancy.Set(occ)
	r.met.SchedOccPeak.SetMax(occ)
}

// dropTC records a time-constrained drop in counters and the lifecycle
// stream.
func (r *Router) dropTC(reason metrics.DropReason, conn uint8, port int) {
	if r.met != nil {
		r.met.Drops[reason].Inc()
	}
	if r.OnLifecycle != nil {
		r.lifecycle(LifecycleEvent{Kind: EvDrop, Port: port, InConn: conn, Reason: reason})
	}
}

// dropBE records a best-effort drop.
func (r *Router) dropBE(reason metrics.DropReason, port int) {
	if r.met != nil {
		r.met.Drops[reason].Inc()
	}
	if r.OnLifecycle != nil {
		r.lifecycle(LifecycleEvent{Kind: EvDrop, Port: port, Reason: reason, BE: true})
	}
}
