package core

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
)

// TestEndToEndFailover exercises the resilience story the paper's
// introduction motivates ("several disjoint routes between each pair of
// processing nodes"): a channel flows, its link dies mid-run, traffic
// blackholes until the protocol software reroutes onto the disjoint
// path, and deliveries resume with guarantees intact.
func TestEndToEndFailover(t *testing.T) {
	sys := MustNewMesh(3, 3, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 80}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	send := func(n int) {
		for i := 0; i < n; i++ {
			if err := ch.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			sys.Run(spec.Imin * packet.TCBytes)
		}
		sys.Run(spec.D * packet.TCBytes)
	}
	send(5)
	if got := sys.Sink(dst).TCCount; got != 5 {
		t.Fatalf("pre-failure deliveries %d/5", got)
	}

	// The first XY link dies.
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	// Traffic sent now blackholes at the dead port (drops counted, no
	// false deliveries).
	send(3)
	if got := sys.Sink(dst).TCCount; got != 5 {
		t.Fatalf("deliveries across a dead link: %d", got)
	}
	if sys.Summarize().TCDrops == 0 {
		t.Error("blackholed packets not accounted")
	}

	// Protocol software reroutes; service resumes on the YX path.
	if err := ch.Reroute(); err != nil {
		t.Fatal(err)
	}
	if ch.Admitted().Uses(src, router.PortXPlus) {
		t.Fatal("rerouted channel still uses the failed link")
	}
	send(5)
	if got := sys.Sink(dst).TCCount; got != 10 {
		t.Errorf("post-failover deliveries %d/10", got)
	}
	if m := sys.Summarize().TCMisses; m != 0 {
		t.Errorf("deadline misses after failover: %d", m)
	}
}

// TestFailoverBestEffort: best-effort traffic has no reroute machinery
// (dimension order is fixed in the header); packets toward a dead link
// drop as misroutes while other paths keep working.
func TestFailoverBestEffort(t *testing.T) {
	sys := MustNewMesh(2, 2, Options{})
	if err := sys.FailLink(mesh.Coord{X: 0, Y: 0}, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	// (0,0)→(1,0) needs the dead +x link: dropped.
	if err := sys.SendBestEffort(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// (0,0)→(0,1) is unaffected.
	if err := sys.SendBestEffort(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 0, Y: 1}, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	sys.Run(5000)
	if got := sys.Sink(mesh.Coord{X: 1, Y: 0}).BECount; got != 0 {
		t.Error("packet crossed a severed link")
	}
	if got := sys.Sink(mesh.Coord{X: 0, Y: 1}).BECount; got != 1 {
		t.Error("unrelated path disturbed by the failure")
	}
	if sys.Router(mesh.Coord{X: 0, Y: 0}).Stats.BEMisroutes != 1 {
		t.Error("dead-port drop not counted as misroute")
	}
}

// TestRerouteWithoutCapacityFails: if no alternate path can host the
// channel, Reroute reports failure and the channel keeps its original
// reservations — a refused reroute must not half-release the channel.
func TestRerouteWithoutCapacityFails(t *testing.T) {
	sys := MustNewMesh(2, 2, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 1}
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 16}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill both of src's outgoing links: no route can exist.
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailLink(src, router.PortYPlus); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reroute(); err == nil {
		t.Fatal("reroute succeeded with no live path")
	}
	// The failed attempt restored the original reservations verbatim:
	// the channel is still admitted and can still be torn down cleanly.
	if sys.Adm.Active() != 1 {
		t.Fatalf("channel count after failed reroute: %d, want 1", sys.Adm.Active())
	}
	if err := ch.Close(); err != nil {
		t.Fatalf("teardown after failed reroute: %v", err)
	}
	if sys.Adm.Active() != 0 {
		t.Errorf("stale channels after teardown: %d", sys.Adm.Active())
	}
}
