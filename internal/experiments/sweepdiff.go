package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// BaselineRow mirrors one archived sweep row (the jsonRow shape rtbench
// writes to BENCH_router.json).
type BaselineRow struct {
	Mesh              string  `json:"mesh"`
	Cycles            int64   `json:"cycles"`
	Workers           int     `json:"workers"`
	SeqCyclesPerSec   float64 `json:"seq_cycles_per_sec"`
	ParCyclesPerSec   float64 `json:"par_cycles_per_sec"`
	Speedup           float64 `json:"speedup"`
	SeqAllocsPerCycle float64 `json:"seq_allocs_per_cycle"`
	ParAllocsPerCycle float64 `json:"par_allocs_per_cycle"`
}

// SweepBaseline is an archived sweep result.
type SweepBaseline struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Rows       []BaselineRow `json:"rows"`
}

// LoadSweepBaseline reads an archived BENCH_router.json.
func LoadSweepBaseline(path string) (*SweepBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep baseline: %w", err)
	}
	var b SweepBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("sweep baseline %s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("sweep baseline %s: no rows", path)
	}
	return &b, nil
}

// SweepDelta compares one measured row against its baseline
// counterpart, matched by (mesh, workers). Ratios above 1 mean the
// current run is better on speedup and worse on allocations.
type SweepDelta struct {
	Mesh         string
	Workers      int
	BaseSpeedup  float64
	CurSpeedup   float64
	SpeedupRatio float64 // cur/base; machine-rate independent
	BaseAllocs   float64
	CurAllocs    float64
	AllocsRatio  float64 // cur/base parallel allocs per cycle
}

// Diff matches the sweep's rows against the baseline by (mesh,
// workers); rows without a counterpart are skipped (the sweep shapes
// may differ between machines or flag sets).
func (s *SweepResult) Diff(base *SweepBaseline) []SweepDelta {
	idx := make(map[string]BaselineRow, len(base.Rows))
	for _, r := range base.Rows {
		idx[fmt.Sprintf("%s/%d", r.Mesh, r.Workers)] = r
	}
	var out []SweepDelta
	for _, r := range s.Rows {
		mesh := fmt.Sprintf("%dx%d", r.W, r.H)
		b, ok := idx[fmt.Sprintf("%s/%d", mesh, r.Workers)]
		if !ok {
			continue
		}
		d := SweepDelta{
			Mesh: mesh, Workers: r.Workers,
			BaseSpeedup: b.Speedup, CurSpeedup: r.Speedup,
			BaseAllocs: b.ParAllocsPerCycle, CurAllocs: r.ParAllocsPerCycle,
		}
		if b.Speedup > 0 {
			d.SpeedupRatio = r.Speedup / b.Speedup
		}
		if b.ParAllocsPerCycle > 0 {
			d.AllocsRatio = r.ParAllocsPerCycle / b.ParAllocsPerCycle
		} else if r.ParAllocsPerCycle == 0 {
			d.AllocsRatio = 1
		}
		out = append(out, d)
	}
	return out
}

// DeltaTable renders the baseline comparison.
func DeltaTable(deltas []SweepDelta, baselinePath string) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Sweep vs baseline %s", baselinePath),
		Header: []string{"mesh", "workers", "speedup", "base", "ratio", "allocs/cyc", "base", "ratio"},
	}
	for _, d := range deltas {
		t.AddRow(
			d.Mesh,
			fmt.Sprintf("%d", d.Workers),
			fmt.Sprintf("%.2fx", d.CurSpeedup),
			fmt.Sprintf("%.2fx", d.BaseSpeedup),
			fmt.Sprintf("%.2f", d.SpeedupRatio),
			fmt.Sprintf("%.2f", d.CurAllocs),
			fmt.Sprintf("%.2f", d.BaseAllocs),
			fmt.Sprintf("%.2f", d.AllocsRatio),
		)
	}
	return t
}

// CheckRegression returns an error naming the first row whose speedup
// fell more than maxRegress (a fraction, e.g. 0.2 = 20%) below the
// baseline, or whose parallel allocations per cycle grew more than
// maxRegress above it. Single-worker rows are exempt from the speedup
// floor (their ratio is 1.0 by construction and pure noise).
func CheckRegression(deltas []SweepDelta, maxRegress float64) error {
	if maxRegress <= 0 {
		return nil
	}
	for _, d := range deltas {
		if d.Workers > 1 && d.BaseSpeedup > 0 && d.SpeedupRatio < 1-maxRegress {
			return fmt.Errorf("%s x%d: speedup %.2fx is %.0f%% below baseline %.2fx",
				d.Mesh, d.Workers, d.CurSpeedup, (1-d.SpeedupRatio)*100, d.BaseSpeedup)
		}
		if d.BaseAllocs > 0 && d.AllocsRatio > 1+maxRegress {
			return fmt.Errorf("%s x%d: allocs/cycle %.2f is %.0f%% above baseline %.2f",
				d.Mesh, d.Workers, d.CurAllocs, (d.AllocsRatio-1)*100, d.BaseAllocs)
		}
	}
	return nil
}
