// Package router implements the real-time router chip of Rexford, Hall &
// Shin (ISCA 1996) as a cycle-accurate synchronous model.
//
// The router serves a node of a 2-D mesh: four bidirectional mesh links,
// separate injection ports for time-constrained and best-effort traffic,
// and a shared reception port (Figure 2). Each physical link carries two
// virtual channels — a packet-switched channel for fixed-size
// time-constrained packets and a wormhole channel for variable-size
// best-effort packets — discriminated by a single type bit, with an
// acknowledgement bit for best-effort flit credits in the reverse
// direction.
//
// Time-constrained packets are stored in a shared 256-slot packet memory,
// scheduled for the five output ports by a single shared comparator tree
// over deadline-normalized sorting keys, and routed by a connection table
// programmed through the control interface (Table 3). Best-effort packets
// cut through with dimension-ordered routing, 10-byte flit buffers at each
// input, round-robin arbitration over inputs, and byte-level preemption
// whenever an on-time time-constrained packet awaits service.
package router

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sched"
)

// Output/input port indices. The four mesh directions, then the local
// port (reception on the output side, injection on the input side).
const (
	PortXPlus  = 0
	PortXMinus = 1
	PortYPlus  = 2
	PortYMinus = 3
	PortLocal  = 4
	NumPorts   = 5
	// NumLinks is the number of physical mesh links (ports with wires).
	NumLinks = 4
)

// PortName returns a short label for a port index.
func PortName(p int) string {
	switch p {
	case PortXPlus:
		return "+x"
	case PortXMinus:
		return "-x"
	case PortYPlus:
		return "+y"
	case PortYMinus:
		return "-y"
	case PortLocal:
		return "local"
	default:
		return fmt.Sprintf("port(%d)", p)
	}
}

// SchedulerKind selects the link-scheduling discipline, for the paper's
// design and its ablation baselines.
type SchedulerKind int

const (
	// SchedEDF is the paper's deadline-driven comparator tree with
	// logical-arrival eligibility and per-port horizons.
	SchedEDF SchedulerKind = iota
	// SchedFIFO serves time-constrained packets in arrival order.
	SchedFIFO
	// SchedStaticPriority serves by fixed per-connection priority.
	SchedStaticPriority
	// SchedApproxEDF is the paper's Section 7 reduced-complexity
	// extension: deadline order quantized to 2^ApproxShift-slot buckets.
	SchedApproxEDF
	// SchedTournament drives the chip from the structural comparator
	// tree (the Figure 5 hardware mirror) instead of the linear-scan
	// model; decisions are identical, the reduction is gate-for-gate.
	SchedTournament
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedEDF:
		return "edf"
	case SchedFIFO:
		return "fifo"
	case SchedStaticPriority:
		return "static-priority"
	case SchedApproxEDF:
		return "approx-edf"
	case SchedTournament:
		return "tournament"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// Config holds the architectural parameters of Table 4a plus the
// simulation knobs that stand in for circuit timings.
type Config struct {
	// Slots is the number of time-constrained packet buffers in the
	// shared memory (and comparator-tree leaves). Paper: 256.
	Slots int
	// Conns is the size of the connection table. Paper: 256.
	Conns int
	// ClockBits is the width of the on-chip slot clock; sorting keys are
	// one bit wider. At most 8, the width of the header stamp field.
	// Paper: 8.
	ClockBits uint
	// FlitBufBytes is the per-input best-effort flit buffer capacity.
	// Paper: 10.
	FlitBufBytes int
	// ChunkBytes is the packet-memory word width; the internal bus moves
	// one chunk per cycle. Paper: 10.
	ChunkBytes int
	// SchedPeriod is the number of cycles between comparator-tree
	// results. The paper's two-stage pipeline produces one selection per
	// stage time (~50 ns ≈ 2.5 cycles); default 3.
	SchedPeriod int
	// LeafSharing is the §5.1 cost-reduction factor: combining
	// LeafSharing leaves into one module with a single comparator shrinks
	// the tree by that factor but serializes each module's packets, so a
	// selection takes LeafSharing times as long — modelled as a
	// proportionally slower scheduler beat. Default 1 (the paper's chip).
	LeafSharing int
	// Scheduler selects the scheduling discipline (default SchedEDF).
	Scheduler SchedulerKind
	// ApproxShift is the key-quantization exponent for SchedApproxEDF:
	// laxities within the same 2^ApproxShift-slot bucket are not
	// distinguished. Ignored by other schedulers.
	ApproxShift uint
	// BEHeadDelay is the per-hop pipeline delay, in cycles, between a
	// best-effort header being decoded and its first flit leaving: the
	// paper's byte synchronization plus five-byte chunk accumulation for
	// the router's internal bus (Section 5.2 attributes its 30-cycle
	// three-hop overhead to these). Default 5.
	BEHeadDelay int
	// VCT enables the virtual cut-through extension for time-constrained
	// traffic sketched in the paper's Section 7: an arriving packet may
	// proceed directly to an idle output if nothing more urgent waits.
	VCT bool
	// SkewCycles offsets this router's slot clock from global time, in
	// byte cycles (positive = this clock runs ahead). Section 4.1 assumes
	// routers share a common notion of time within bounded skew; this
	// knob quantifies how much skew the design tolerates (experiment X8).
	SkewCycles int64
	// Integrity enables link-level error detection: a CRC-8 rides the
	// tail phit of every time-constrained frame and the sideband of every
	// best-effort flit. Corrupted time-constrained packets are dropped at
	// the input (the reservation model absorbs the loss as slack);
	// corrupted best-effort flits are nacked over the reverse channel and
	// retransmitted by the sender. Off by default: with Integrity false
	// the wire protocol is bit-identical to the base design.
	Integrity bool
	// BERetryLimit bounds how many times one best-effort frame may be
	// retransmitted after a nack before the sender aborts it with an
	// Abort tail flit. Zero means the default (8). Ignored unless
	// Integrity is set.
	BERetryLimit int
	// LinkLatency is the one-way mesh-wire latency in cycles (phit and
	// acknowledgement alike). Zero means the default of 1, the paper's
	// single-cycle wire. Longer wires model pipelined board-level links;
	// they also raise the parallel kernel's legal epoch length, which is
	// derived from the minimum cross-shard wire latency. The best-effort
	// nack window scales with the round trip automatically.
	LinkLatency int
	// Horizons are the initial per-output-port horizon parameters (in
	// slots); the control interface can rewrite them at run time.
	Horizons [NumPorts]uint32
}

// linkLatency returns the effective wire latency (the zero value means
// the paper's single-cycle link).
func (c Config) linkLatency() int64 {
	if c.LinkLatency <= 0 {
		return 1
	}
	return int64(c.LinkLatency)
}

// DefaultConfig returns the paper's chip configuration.
func DefaultConfig() Config {
	return Config{
		Slots:        256,
		Conns:        256,
		ClockBits:    8,
		FlitBufBytes: 10,
		ChunkBytes:   10,
		SchedPeriod:  3,
		LeafSharing:  1,
		BEHeadDelay:  5,
		Scheduler:    SchedEDF,
		BERetryLimit: 8,
	}
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Slots < 1:
		return fmt.Errorf("router: Slots must be positive, got %d", c.Slots)
	case c.Conns < 1 || c.Conns > 256:
		return fmt.Errorf("router: Conns must be in [1,256] (8-bit header id), got %d", c.Conns)
	case c.ClockBits < 2 || c.ClockBits > 8:
		return fmt.Errorf("router: ClockBits must be in [2,8] (8-bit header stamp), got %d", c.ClockBits)
	case c.FlitBufBytes < packet.BEHeaderBytes:
		return fmt.Errorf("router: FlitBufBytes must hold at least a %d-byte header, got %d",
			packet.BEHeaderBytes, c.FlitBufBytes)
	case c.ChunkBytes < 1 || packet.TCBytes%c.ChunkBytes != 0:
		return fmt.Errorf("router: ChunkBytes must divide %d, got %d", packet.TCBytes, c.ChunkBytes)
	case c.SchedPeriod < 1:
		return fmt.Errorf("router: SchedPeriod must be positive, got %d", c.SchedPeriod)
	case c.LeafSharing < 1:
		return fmt.Errorf("router: LeafSharing must be at least 1, got %d", c.LeafSharing)
	case c.BEHeadDelay < 0:
		return fmt.Errorf("router: BEHeadDelay must be non-negative, got %d", c.BEHeadDelay)
	case c.BERetryLimit < 0:
		return fmt.Errorf("router: BERetryLimit must be non-negative, got %d", c.BERetryLimit)
	case c.LinkLatency < 0 || c.LinkLatency > 64:
		return fmt.Errorf("router: LinkLatency must be in [0,64], got %d", c.LinkLatency)
	case c.Scheduler == SchedApproxEDF && c.ApproxShift >= c.ClockBits:
		return fmt.Errorf("router: ApproxShift %d leaves no key bits on a %d-bit clock",
			c.ApproxShift, c.ClockBits)
	}
	if max := int64(1) << (c.ClockBits - 2) * packet.TCBytes; c.SkewCycles > max || c.SkewCycles < -max {
		return fmt.Errorf("router: clock skew %d cycles exceeds a quarter of the clock range", c.SkewCycles)
	}
	for p, h := range c.Horizons {
		if h >= 1<<(c.ClockBits-1) {
			return fmt.Errorf("router: horizon %d on port %s exceeds half clock range", h, PortName(p))
		}
	}
	return nil
}

func (c Config) newScheduler() sched.Scheduler {
	switch c.Scheduler {
	case SchedFIFO:
		return sched.NewFIFO(c.Slots)
	case SchedStaticPriority:
		return sched.NewStaticPriority(c.Slots)
	case SchedApproxEDF:
		s, err := sched.NewApproxEDF(c.Slots, mustWheel(c.ClockBits), c.ApproxShift)
		if err != nil {
			panic(err) // Validate rejects bad shifts before this point
		}
		return s
	case SchedTournament:
		return sched.NewTournament(c.Slots, mustWheel(c.ClockBits))
	default:
		return sched.NewEDFTree(c.Slots, mustWheel(c.ClockBits))
	}
}
