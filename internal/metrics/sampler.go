package metrics

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sampler periodically snapshots registry totals into a
// stats.TimeSeries, producing Figure 7-style curves of the network's
// internal state (occupancy, wins, misses, stalls) over the run. It
// implements sim.Component; register it after the routers so samples
// reflect the cycle just executed.
type Sampler struct {
	name  string
	reg   *Registry
	every int64

	// TS receives one point per sampled quantity per period.
	TS *stats.TimeSeries
}

// NewSampler creates a sampler emitting one point every `every` cycles
// (clamped to at least 1).
func NewSampler(name string, reg *Registry, every int64) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{name: name, reg: reg, every: every, TS: stats.NewTimeSeries()}
}

// Name implements sim.Component.
func (s *Sampler) Name() string { return s.name }

// Every returns the sampling period in cycles.
func (s *Sampler) Every() int64 { return s.every }

// Tick implements sim.Component.
func (s *Sampler) Tick(now sim.Cycle) {
	t := int64(now)
	if t%s.every != 0 {
		return
	}
	s.reg.Cycles.Store(t + 1)
	snap := s.reg.Snapshot()
	tot := snap.Totals
	obs := func(name string, v int64) { s.TS.Observe(name, t, float64(v)) }
	obs("tc_enqueued", tot.TCEnqueued)
	obs("tc_delivered", tot.TCDelivered)
	obs("be_delivered", tot.BEDelivered)
	obs("deadline_misses", tot.DeadlineMisses)
	obs("mem_occupancy", tot.MemOccupancy)
	obs("mem_high_water", tot.MemHighWater)
	obs("sched_occupancy", tot.SchedOccupancy)
	obs("slot_rollovers", tot.SlotRollovers)
	obs("cut_throughs", tot.CutThroughs)
	var onTime, early, be, stalls, drops int64
	for _, wins := range tot.ArbWins {
		onTime += wins[ArbOnTime.String()]
		early += wins[ArbEarly.String()]
		be += wins[ArbBE.String()]
	}
	for _, v := range tot.BEStallCycles {
		stalls += v
	}
	for _, v := range tot.Drops {
		drops += v
	}
	obs("arb_on_time", onTime)
	obs("arb_early", early)
	obs("arb_best_effort", be)
	obs("be_stall_cycles", stalls)
	obs("drops", drops)
}
