// Package scenario loads declarative workload descriptions for the
// rtsim tool: a JSON file names the mesh, the real-time channels with
// their traffic contracts and generation patterns, the best-effort
// background flows, and optional link failures on a timeline — the
// configuration-file front end a network-simulator release needs.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// Scenario is the top-level document.
type Scenario struct {
	// Mesh dimensions.
	Mesh struct {
		W, H int
	} `json:"mesh"`
	// Cycles to simulate.
	Cycles int64 `json:"cycles"`
	// Seed for best-effort randomness.
	Seed int64 `json:"seed"`

	// Router tweaks (zero values keep the paper defaults).
	Router struct {
		Scheduler   string `json:"scheduler"` // edf|fifo|static|approx
		ApproxShift uint   `json:"approxShift"`
		VCT         bool   `json:"vct"`
	} `json:"router"`

	// Admission configuration.
	Admission struct {
		Policy       string `json:"policy"` // partitioned|shared
		SourceWindow int64  `json:"sourceWindow"`
		Horizon      uint32 `json:"horizon"`
	} `json:"admission"`

	Channels   []Channel  `json:"channels"`
	BestEffort []BEFlow   `json:"bestEffort"`
	Failures   []LinkFail `json:"failures"`
}

// Channel describes one real-time channel and its generator.
type Channel struct {
	Src     [2]int   `json:"src"`
	Dsts    [][2]int `json:"dsts"`
	Imin    int64    `json:"imin"`
	Smax    int      `json:"smax"`
	Bmax    int      `json:"bmax"`
	D       int64    `json:"d"`
	Pattern string   `json:"pattern"` // periodic|bursty|backlogged
	Size    int      `json:"size"`    // message payload bytes (default Smax)
}

// BEFlow describes one best-effort source.
type BEFlow struct {
	Src     [2]int  `json:"src"`
	Dst     *[2]int `json:"dst"` // nil = uniform random destinations
	Rate    float64 `json:"rate"`
	SizeMin int     `json:"sizeMin"`
	SizeMax int     `json:"sizeMax"`
}

// LinkFail schedules a link failure at a cycle; affected channels are
// rerouted immediately afterwards.
type LinkFail struct {
	At   int64  `json:"at"`
	From [2]int `json:"from"`
	Port string `json:"port"` // +x|-x|+y|-y
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(raw)
}

// Parse decodes and validates scenario JSON.
func Parse(raw []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

func (sc *Scenario) validate() error {
	if sc.Mesh.W < 1 || sc.Mesh.H < 1 {
		return fmt.Errorf("scenario: mesh %dx%d invalid", sc.Mesh.W, sc.Mesh.H)
	}
	if sc.Cycles < 1 {
		return fmt.Errorf("scenario: cycles %d invalid", sc.Cycles)
	}
	switch sc.Router.Scheduler {
	case "", "edf", "fifo", "static", "approx":
	default:
		return fmt.Errorf("scenario: unknown scheduler %q", sc.Router.Scheduler)
	}
	switch sc.Admission.Policy {
	case "", "partitioned", "shared":
	default:
		return fmt.Errorf("scenario: unknown buffer policy %q", sc.Admission.Policy)
	}
	for i, ch := range sc.Channels {
		if len(ch.Dsts) == 0 {
			return fmt.Errorf("scenario: channel %d has no destinations", i)
		}
		switch ch.Pattern {
		case "", "periodic", "bursty", "backlogged":
		default:
			return fmt.Errorf("scenario: channel %d: unknown pattern %q", i, ch.Pattern)
		}
	}
	for i, f := range sc.Failures {
		if _, err := parsePort(f.Port); err != nil {
			return fmt.Errorf("scenario: failure %d: %w", i, err)
		}
		if f.At < 0 || f.At >= sc.Cycles {
			return fmt.Errorf("scenario: failure %d at cycle %d outside the run", i, f.At)
		}
	}
	return nil
}

func parsePort(s string) (int, error) {
	switch s {
	case "+x":
		return router.PortXPlus, nil
	case "-x":
		return router.PortXMinus, nil
	case "+y":
		return router.PortYPlus, nil
	case "-y":
		return router.PortYMinus, nil
	default:
		return 0, fmt.Errorf("unknown port %q", s)
	}
}

func coord(a [2]int) mesh.Coord { return mesh.Coord{X: a[0], Y: a[1]} }

// Result summarizes a scenario run.
type Result struct {
	Opened   int
	Rejected []string
	Rerouted int
	Summary  core.Summary
	Cycles   int64
	Failures int
}

// RunOpts carries harness-level knobs that are not part of the
// scenario document itself.
type RunOpts struct {
	// Metrics, when non-nil, attaches the telemetry registry to every
	// router in the built system.
	Metrics *metrics.Registry
	// SampleEvery, when positive, registers a periodic sampler
	// snapshotting the registry into System.Sampler.TS.
	SampleEvery int64
	// Collector, when non-nil, attaches the sharded lifecycle collector
	// to every router (parallel-safe tracing).
	Collector *obs.Sharded
	// ChannelSLO, when non-nil, attaches per-channel SLO accounting to
	// every channel the scenario opens.
	ChannelSLO *obs.SLO
	// Workers selects the kernel execution mode: 0 or 1 sequential,
	// n > 1 parallel over per-node shards (bit-identical results),
	// negative GOMAXPROCS. Parallel runs should Close the returned
	// System when done with it.
	Workers int
}

// Run builds the system, opens every channel, attaches the generators,
// plays the failure timeline (rerouting affected channels), and returns
// the summary.
func (sc *Scenario) Run() (*Result, *core.System, error) {
	return sc.RunWith(RunOpts{})
}

// RunWith is Run with harness options (telemetry attachment).
func (sc *Scenario) RunWith(opts RunOpts) (*Result, *core.System, error) {
	rcfg := router.DefaultConfig()
	rcfg.VCT = sc.Router.VCT
	switch sc.Router.Scheduler {
	case "fifo":
		rcfg.Scheduler = router.SchedFIFO
	case "static":
		rcfg.Scheduler = router.SchedStaticPriority
	case "approx":
		rcfg.Scheduler = router.SchedApproxEDF
		rcfg.ApproxShift = sc.Router.ApproxShift
	}
	acfg := admission.DefaultConfig()
	if sc.Admission.Policy == "shared" {
		acfg.Policy = admission.SharedPool
	}
	if sc.Admission.SourceWindow > 0 {
		acfg.SourceWindow = sc.Admission.SourceWindow
	}
	acfg.Horizon = sc.Admission.Horizon

	sys, err := core.NewMesh(sc.Mesh.W, sc.Mesh.H, core.Options{
		Router:             rcfg,
		Metrics:            opts.Metrics,
		MetricsSampleEvery: opts.SampleEvery,
		Collector:          opts.Collector,
		ChannelSLO:         opts.ChannelSLO,
		Workers:            opts.Workers,
	}.WithAdmission(acfg))
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Cycles: sc.Cycles}

	type openChan struct {
		ch  *core.Channel
		def Channel
	}
	var opened []openChan
	for i, def := range sc.Channels {
		spec := rtc.Spec{Imin: def.Imin, Smax: def.Smax, Bmax: def.Bmax, D: def.D}
		dsts := make([]mesh.Coord, len(def.Dsts))
		for j, d := range def.Dsts {
			dsts[j] = coord(d)
		}
		ch, err := sys.OpenChannel(coord(def.Src), dsts, spec)
		if err != nil {
			res.Rejected = append(res.Rejected, fmt.Sprintf("channel %d: %v", i, err))
			continue
		}
		pattern := traffic.Periodic
		switch def.Pattern {
		case "bursty":
			pattern = traffic.Bursty
		case "backlogged":
			pattern = traffic.Backlogged
		}
		size := def.Size
		if size == 0 {
			size = def.Smax
		}
		// Pass the core.Channel facade, not the raw regulator handle, so
		// the generator keeps flowing after a failure-driven Reroute.
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch, spec, pattern, size)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: channel %d: %w", i, err)
		}
		// The generator only touches its source node's regulator, so it
		// lives in that node's shard and stays off the parallel-mode
		// barrier path.
		sys.RegisterNode(coord(def.Src), app)
		opened = append(opened, openChan{ch, def})
		res.Opened++
	}
	for i, f := range sc.BestEffort {
		var dst traffic.DstPicker
		if f.Dst != nil {
			dst = traffic.FixedDst(coord(*f.Dst))
		} else {
			dst = traffic.UniformDst(sys.Net, coord(f.Src))
		}
		lo, hi := f.SizeMin, f.SizeMax
		if lo < 1 {
			lo = traffic.ProbeBytes
		}
		if hi < lo {
			hi = lo
		}
		app, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, coord(f.Src),
			dst, traffic.UniformSize(lo, hi), f.Rate, sc.Seed+int64(i))
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: best-effort %d: %w", i, err)
		}
		sys.RegisterNode(coord(f.Src), app)
	}

	fails := append([]LinkFail(nil), sc.Failures...)
	sort.Slice(fails, func(i, j int) bool { return fails[i].At < fails[j].At })
	at := int64(0)
	for _, f := range fails {
		sys.Run(f.At - at)
		at = f.At
		port, _ := parsePort(f.Port)
		if err := sys.FailLink(coord(f.From), port); err != nil {
			return nil, nil, fmt.Errorf("scenario: failure at %d: %w", f.At, err)
		}
		res.Failures++
		// A severed link is dead in both directions: reroute channels
		// crossing it either way.
		rev := map[int]int{
			router.PortXPlus:  router.PortXMinus,
			router.PortXMinus: router.PortXPlus,
			router.PortYPlus:  router.PortYMinus,
			router.PortYMinus: router.PortYPlus,
		}[port]
		to := coord(f.From).Add(port)
		for _, oc := range opened {
			if oc.ch.Admitted().Uses(coord(f.From), port) || oc.ch.Admitted().Uses(to, rev) {
				if err := oc.ch.Reroute(); err == nil {
					res.Rerouted++
				}
			}
		}
	}
	sys.Run(sc.Cycles - at)
	res.Summary = sys.Summarize()
	return res, sys, nil
}
