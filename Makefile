GO ?= go

.PHONY: check build vet test fmt bench

# check is the tier-1 gate: vet, build, race tests, and formatting.
check: vet build test fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# fmt fails (rather than rewrites) so CI catches unformatted files.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem ./...
