package admission

import "repro/internal/mesh"

// Incremental EDF analysis. edfAnalyze re-enumerates every step point of
// every committed task on every check, which makes admission cost grow
// superlinearly with admitted channels. The edfCache keeps, per link, the
// committed task set's analysis pre-digested — the sorted union of its
// step points t = D_i + k·T_i with the demand-bound function dbf(t)
// prefix-summed at each — so checking a candidate costs O(cached points +
// candidate's own steps) instead of O(points × tasks).
//
// The cache is bound by the byte-identity contract: for any committed set
// and candidate, check() must return exactly the edfReport that
// edfAnalyze(append(tasks, cand)) would — same verdict, same headroom,
// same failing step point, and a bitwise-equal utilization float. That
// last part dictates the update discipline: util is a float sum in task-
// slice order, so removals re-sum the survivors in order rather than
// subtracting (float subtraction does not invert float addition).
//
// check() is strictly read-only on both the cache and the controller, so
// batch admission can evaluate many candidates concurrently against one
// frozen ledger; all mutation happens in addTask/removeTask, called only
// from the serial commit/teardown paths.

// stepPoint is one absolute deadline in the committed set's analysis
// window: w is the demand that arrives exactly at t (the sum of C over
// tasks with a step there).
type stepPoint struct {
	t, w int64
}

// evalScratch holds the per-caller scratch buffers a check needs, so the
// hot path allocates nothing and concurrent checkers never share state.
type evalScratch struct {
	next  []int64 // per-task next release, for the tail merge in check
	tasks []task
	// hops is the unicast planner's hop buffer; plans only copy it out
	// once a route passes every check.
	hops []planHop
	// coords is the layout planner's visited-router buffer (loop check).
	coords []mesh.Coord
	// tailT/tailP extend the cache's points/prefix past its coverage for
	// one failReport call: merged committed step points in (cover,
	// tailHi] with the running demand at each. tailBase carries the
	// min-scan's running demand so the merge resumes where it stopped —
	// the tail grows lazily to the largest t the rescan actually visits.
	tailT    []int64
	tailP    []int64
	tailBase int64
	tailHi   int64
	// memo caches full check verdicts keyed by (cache identity, cache
	// epoch, candidate parameters). Mass admission re-checks the same few
	// candidate shapes against the same committed sets thousands of times
	// — every request in a traffic family shares one Spec, and per-hop
	// deadlines only take a handful of values — so most checks become one
	// map probe. Exact by construction: check is a pure function of the
	// committed set (named by cache+epoch) and the candidate.
	memo map[checkKey]edfReport
	// candRep memoizes the empty-link analysis of the current candidate:
	// a route visits many links with no reservations, and their verdict
	// depends only on the candidate's (C, T, D). candValid gates the memo
	// and candC/candT/candD key it.
	candValid           bool
	candC, candT, candD int64
	candRep             edfReport
}

// emptyCheck returns emptyLinkCache.check(nil, cand, sc) through the
// scratch's single-entry memo. Exact: the empty-link report is a pure
// function of the candidate's timing parameters.
func (sc *evalScratch) emptyCheck(cand task) edfReport {
	if !sc.candValid || sc.candC != cand.C || sc.candT != cand.T || sc.candD != cand.D {
		sc.candRep = emptyLinkCache.check(nil, cand, sc)
		sc.candC, sc.candT, sc.candD = cand.C, cand.T, cand.D
		sc.candValid = true
	}
	return sc.candRep
}

type edfCache struct {
	built bool
	// epoch counts mutations (rebuild/addTask/removeTask). Together with
	// the cache's identity it names one exact committed set, which is
	// what lets evalScratch memoize check verdicts across calls.
	epoch uint64
	// degenerate marks a committed set that failed task validity; every
	// check falls back to the from-scratch analysis until a rebuild. It
	// cannot happen through the normal admit path (only valid tasks
	// commit) and exists purely as a safety net.
	degenerate bool
	sumC       int64
	util       float64 // ΣC/T in task-slice order, bit-exact vs edfAnalyze
	maxD       int64
	// points/prefix cover every committed step point in (0, cover], with
	// prefix[i] = dbf(points[i].t) over the committed set. cover is kept
	// ahead of the committed busy-period bound so candidate checks, whose
	// bound is necessarily larger, usually stay inside the cache.
	cover  int64
	points []stepPoint
	prefix []int64
	// spare and raw are mutation-path scratch (mergeIn double-buffers
	// points through spare; add/rebuild gather new steps into raw), so a
	// warm cache's updates allocate nothing. check() never touches them —
	// concurrent checkers use their own evalScratch.
	spare []stepPoint
	raw   []stepPoint
}

// busyBoundFrom is busyPeriodBound with the scalars already in hand.
func busyBoundFrom(maxD, sumC int64, util float64) int64 {
	if util >= 1.0-1e-9 {
		return maxAnalysisHorizon
	}
	bp := int64(float64(sumC)/(1.0-util)) + 1
	if bp < maxD {
		bp = maxD
	}
	if bp > maxAnalysisHorizon {
		bp = maxAnalysisHorizon
	}
	return bp
}

// coverCap bounds the cached coverage. Near utilization 1 the busy-period
// bound explodes toward maxAnalysisHorizon, and materializing that many
// step points makes every commit-time re-merge O(tasks × horizon / T) —
// while candidate checks rarely reach that deep (a rejection stops at its
// first violated step point). Beyond the cap, check and committedReport
// merge the committed ladders on the fly instead — an O(tasks) min-scan
// per point, far cheaper than keeping (and re-sorting) the points
// resident.
const coverCap = 4096

// coverFor picks the cache coverage for a committed busy-period bound:
// doubled (within the cap) so the typical candidate check — whose own
// bound exceeds the committed one — finds every point it needs already
// cached instead of gathering a tail.
func coverFor(limit int64) int64 {
	c := 2 * limit
	if c < 256 {
		c = 256
	}
	if c > coverCap {
		c = coverCap
	}
	return c
}

func validTask(tk task) bool {
	return tk.C >= 1 && tk.T >= 1 && tk.D >= 1 && tk.C <= tk.D
}

// stepsInto appends every step point t = D + k·T of tk with lo < t ≤ hi.
func stepsInto(buf []stepPoint, tk task, lo, hi int64) []stepPoint {
	t := tk.D
	if lo >= tk.D {
		t = tk.D + ((lo-tk.D)/tk.T+1)*tk.T
	}
	for ; t <= hi; t += tk.T {
		buf = append(buf, stepPoint{t, tk.C})
	}
	return buf
}

// sortSteps orders points by t without allocating (heapsort; the inputs
// are concatenations of short ascending runs, and sizes stay small).
func sortSteps(s []stepPoint) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftStep(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftStep(s, 0, i)
	}
}

func siftStep(s []stepPoint, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && s[child+1].t > s[child].t {
			child++
		}
		if s[root].t >= s[child].t {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}

// rebuild computes the cache from scratch off the committed set.
func (ec *edfCache) rebuild(tasks []task) {
	ec.epoch++
	ec.built = true
	ec.degenerate = false
	ec.sumC, ec.util, ec.maxD = 0, 0, 0
	ec.points = ec.points[:0]
	ec.prefix = ec.prefix[:0]
	for _, tk := range tasks {
		if !validTask(tk) {
			ec.degenerate = true
			return
		}
		ec.sumC += tk.C
		ec.util += float64(tk.C) / float64(tk.T)
		if tk.D > ec.maxD {
			ec.maxD = tk.D
		}
	}
	ec.cover = coverFor(busyBoundFrom(ec.maxD, ec.sumC, ec.util))
	raw := ec.raw[:0]
	for i := range tasks {
		raw = stepsInto(raw, tasks[i], 0, ec.cover)
	}
	ec.raw = raw
	ec.mergeIn(raw)
}

// mergeIn folds raw (unsorted) step points into the sorted unique
// points/prefix arrays, summing weights at equal t.
func (ec *edfCache) mergeIn(raw []stepPoint) {
	if len(raw) > 0 {
		sortSteps(raw)
		merged := ec.spare[:0]
		i, j := 0, 0
		for i < len(ec.points) || j < len(raw) {
			switch {
			case j == len(raw) || (i < len(ec.points) && ec.points[i].t < raw[j].t):
				merged = append(merged, ec.points[i])
				i++
			case i == len(ec.points) || raw[j].t < ec.points[i].t:
				p := raw[j]
				j++
				for j < len(raw) && raw[j].t == p.t {
					p.w += raw[j].w
					j++
				}
				merged = append(merged, p)
			default: // equal t
				p := ec.points[i]
				i++
				for j < len(raw) && raw[j].t == p.t {
					p.w += raw[j].w
					j++
				}
				merged = append(merged, p)
			}
		}
		ec.points, ec.spare = merged, ec.points[:0]
	}
	ec.prefix = ec.prefix[:0]
	var run int64
	for _, p := range ec.points {
		run += p.w
		ec.prefix = append(ec.prefix, run)
	}
}

// addTask updates the cache after tk was appended to the committed set;
// tasks is the post-append slice (tk last).
func (ec *edfCache) addTask(tasks []task, tk task) {
	ec.epoch++
	if !ec.built {
		ec.rebuild(tasks)
		return
	}
	if ec.degenerate {
		return
	}
	if !validTask(tk) {
		ec.degenerate = true
		return
	}
	ec.sumC += tk.C
	ec.util += float64(tk.C) / float64(tk.T)
	if tk.D > ec.maxD {
		ec.maxD = tk.D
	}
	// Extend coverage only when the committed bound actually outgrows it,
	// and then jump to double the bound (coverFor). Tracking coverFor
	// continuously would re-merge the whole point array on every admit as
	// the bound creeps upward; extending geometrically amortizes those
	// re-merges the way a growing slice amortizes appends.
	target := ec.cover
	if need := busyBoundFrom(ec.maxD, ec.sumC, ec.util); need > ec.cover {
		target = coverFor(need)
	}
	raw := ec.raw[:0]
	if target > ec.cover {
		// Extend the survivors' coverage first, then lay in the new task.
		for i := range tasks[:len(tasks)-1] {
			raw = stepsInto(raw, tasks[i], ec.cover, target)
		}
	}
	raw = stepsInto(raw, tk, 0, target)
	ec.raw = raw
	ec.cover = target
	ec.mergeIn(raw)
}

// removeTask updates the cache after tk was removed from the committed
// set; tasks is the post-removal slice. Zero-weight points are compacted
// out: a stale point would otherwise surface a slack value edfAnalyze
// never evaluates, corrupting the headroom minimum.
func (ec *edfCache) removeTask(tasks []task, tk task) {
	ec.epoch++
	if !ec.built {
		return
	}
	if ec.degenerate {
		ec.rebuild(tasks)
		return
	}
	ec.sumC -= tk.C
	ec.util, ec.maxD = 0, 0
	for _, t := range tasks {
		ec.util += float64(t.C) / float64(t.T)
		if t.D > ec.maxD {
			ec.maxD = t.D
		}
	}
	out := ec.points[:0]
	next := tk.D
	for _, p := range ec.points {
		if p.t == next {
			p.w -= tk.C
			next += tk.T
		}
		if p.w > 0 {
			out = append(out, p)
		}
	}
	ec.points = out
	ec.mergeIn(nil) // rebuild prefix
	// cover only ever shrinks the committed bound, so coverage stays valid.
}

// candSteps counts the candidate's releases due by t: max(0, ⌊(t−D)/T⌋+1).
func candContrib(cand task, t int64) int64 {
	if t < cand.D {
		return 0
	}
	return ((t-cand.D)/cand.T + 1) * cand.C
}

// checkKey names one memoizable check: the cache pointer plus its
// mutation epoch pin the committed set, the three integers pin the
// candidate.
type checkKey struct {
	ec      *edfCache
	epoch   uint64
	c, t, d int64
}

// memoCap bounds the scratch memo; on overflow the map is cleared (the
// builtin keeps its buckets, so steady state stays allocation-free).
const memoCap = 1 << 15

// check analyzes the committed set plus one candidate, returning exactly
// what edfAnalyze(append(tasks, cand)) returns. Read-only on the cache
// and the task slice; sc supplies the scratch buffers and the verdict
// memo.
func (ec *edfCache) check(tasks []task, cand task, sc *evalScratch) edfReport {
	if ec.built && !ec.degenerate && sc != nil {
		key := checkKey{ec, ec.epoch, cand.C, cand.T, cand.D}
		if rep, ok := sc.memo[key]; ok {
			return rep
		}
		rep := ec.checkFull(tasks, cand, sc)
		if sc.memo == nil {
			sc.memo = make(map[checkKey]edfReport, 1<<10)
		} else if len(sc.memo) >= memoCap {
			clear(sc.memo)
		}
		sc.memo[key] = rep
		return rep
	}
	return ec.checkFull(tasks, cand, sc)
}

// checkFull is the uncached analysis behind check.
func (ec *edfCache) checkFull(tasks []task, cand task, sc *evalScratch) edfReport {
	if !ec.built || ec.degenerate {
		sc.tasks = append(append(sc.tasks[:0], tasks...), cand)
		rep := edfAnalyze(sc.tasks)
		return rep
	}
	if !validTask(cand) {
		// edfAnalyze sums utilization up to (not including) the bad task;
		// the candidate is last, so that sum is the full committed util.
		return edfReport{test: "validity", util: ec.util, margin: -1}
	}
	sumC := ec.sumC + cand.C
	util := ec.util + float64(cand.C)/float64(cand.T)
	if util > 1.0+1e-9 {
		return edfReport{test: "utilization", util: util, margin: 1.0 - util}
	}
	maxD := ec.maxD
	if cand.D > maxD {
		maxD = cand.D
	}
	limit := busyBoundFrom(maxD, sumC, util)

	// One pass over the union of committed and candidate step points ≤
	// limit. dbf at a committed point is the cached prefix (plus the tail
	// running sum); the candidate's own contribution is a running sum —
	// both walks advance in ascending t, so each candidate step adds one
	// C instead of paying candContrib's division per point. Headroom is
	// the minimum slack over the union — the same point set edfAnalyze
	// visits, so the minimum is identical.
	headroom := int64(maxAnalysisHorizon)
	infeasible := false
	dbfC := int64(0) // committed dbf at the last committed point visited
	nc := cand.D     // next candidate step not yet visited
	cc := int64(0)   // candidate demand from steps before nc
	visit := func(t, committed int64) bool {
		for nc < t && nc <= limit {
			cc += cand.C
			if s := nc - dbfC - cc; s < 0 {
				infeasible = true
				return true
			} else if s < headroom {
				headroom = s
			}
			nc += cand.T
		}
		dbfC = committed
		ct := cc
		if nc == t {
			// The candidate also steps exactly at t; count it, but leave
			// nc for the next catch-up so its own visit still happens.
			ct += cand.C
		}
		if s := t - committed - ct; s < 0 {
			infeasible = true
			return true
		} else if s < headroom {
			headroom = s
		}
		return false
	}
	for i := range ec.points {
		if ec.points[i].t > limit {
			break
		}
		if visit(ec.points[i].t, ec.prefix[i]) {
			break
		}
	}
	if !infeasible && limit > ec.cover {
		// Committed step points past the cache coverage: a candidate near
		// the utilization ceiling drives the bound far past the committed
		// coverage. Rather than materializing and sorting that tail (it
		// can hold tens of thousands of points), merge the tasks' ladders
		// on the fly — each ladder is ascending, and per-link task counts
		// are small, so an O(tasks) min-scan per point beats any sort.
		next := sc.next[:0]
		for i := range tasks {
			t := tasks[i].D
			if ec.cover >= t {
				t = tasks[i].D + ((ec.cover-tasks[i].D)/tasks[i].T+1)*tasks[i].T
			}
			next = append(next, t)
		}
		sc.next = next
		base := int64(0)
		if n := len(ec.prefix); n > 0 {
			base = ec.prefix[n-1]
		}
		for {
			mt := limit + 1
			for _, t := range next {
				if t < mt {
					mt = t
				}
			}
			if mt > limit {
				break
			}
			for i := range next {
				if next[i] == mt {
					base += tasks[i].C
					next[i] += tasks[i].T
				}
			}
			if visit(mt, base) {
				break
			}
		}
	}
	if !infeasible {
		for nc <= limit {
			cc += cand.C
			if s := nc - dbfC - cc; s < 0 {
				infeasible = true
				break
			} else if s < headroom {
				headroom = s
			}
			nc += cand.T
		}
	}
	if infeasible {
		return ec.failReport(tasks, cand, limit, util, sc)
	}
	return edfReport{feasible: true, util: util, headroom: headroom,
		margin: float64(headroom)}
}

// resetTail arms the lazy tail merge: the committed ladders' k-way
// min-scan is positioned just past the cache coverage, with nothing
// materialized yet. demandVia extends it on demand, so a rescan that
// finds its violation early never walks the deep tail at all.
func (ec *edfCache) resetTail(tasks []task, sc *evalScratch) {
	sc.tailT, sc.tailP = sc.tailT[:0], sc.tailP[:0]
	next := sc.next[:0]
	for i := range tasks {
		t := tasks[i].D
		if ec.cover >= t {
			t = tasks[i].D + ((ec.cover-tasks[i].D)/tasks[i].T+1)*tasks[i].T
		}
		next = append(next, t)
	}
	sc.next = next
	sc.tailBase = 0
	if n := len(ec.prefix); n > 0 {
		sc.tailBase = ec.prefix[n-1]
	}
	sc.tailHi = ec.cover
}

// extendTail advances the min-scan until every committed step point ≤ t
// is materialized in tailT/tailP.
func (ec *edfCache) extendTail(tasks []task, t int64, sc *evalScratch) {
	next := sc.next
	for {
		mt := t + 1
		for _, nt := range next {
			if nt < mt {
				mt = nt
			}
		}
		if mt > t {
			sc.tailHi = t
			return
		}
		for i := range next {
			if next[i] == mt {
				sc.tailBase += tasks[i].C
				next[i] += tasks[i].T
			}
		}
		sc.tailT = append(sc.tailT, mt)
		sc.tailP = append(sc.tailP, sc.tailBase)
	}
}

// demandVia is dbf(t) over the committed set: the cached prefix inside
// the coverage, the lazily merged scratch tail past it. Exact for any t
// once resetTail has armed the scratch.
func (ec *edfCache) demandVia(tasks []task, t int64, sc *evalScratch) int64 {
	pts, pre := ec.points, ec.prefix
	if t > ec.cover {
		if t > sc.tailHi {
			ec.extendTail(tasks, t, sc)
		}
		lo, hi := 0, len(sc.tailT)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if sc.tailT[mid] <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			return sc.tailP[lo-1]
		}
		// No committed step in (cover, t]: demand equals the full prefix.
		if n := len(pre); n > 0 {
			return pre[n-1]
		}
		return 0
	}
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].t <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return pre[lo-1]
}

// failReport reproduces edfAnalyze's busy-period failure byte for byte:
// the violation reported is the first one in edfAnalyze's own iteration
// order (task slice order, then k ascending), which is not necessarily
// the earliest t. Called only after check proved a violation exists, so
// the scan always finds one. Each demand evaluation costs a binary
// search against the cache (lazily extended past its coverage by
// extendTail) instead of a full pass over the committed set.
func (ec *edfCache) failReport(tasks []task, cand task, limit int64, util float64, sc *evalScratch) edfReport {
	ec.resetTail(tasks, sc)
	for i := 0; i <= len(tasks); i++ {
		tk := cand
		if i < len(tasks) {
			tk = tasks[i]
		}
		for t := tk.D; t <= limit; t += tk.T {
			d := ec.demandVia(tasks, t, sc) + candContrib(cand, t)
			if slack := t - d; slack < 0 {
				return edfReport{test: "busy_period", util: util,
					at: t, demand: d, margin: float64(slack)}
			}
		}
	}
	// Unreachable: check's scan found a negative-slack point over the
	// same union of steps.
	return edfReport{test: "busy_period", util: util, margin: -1}
}

// committedReport analyzes the committed set alone off the cache,
// returning what edfAnalyze(tasks) would. Used by VerifyLedger's
// cross-check and anywhere a from-scratch recompute would be wasteful.
func (ec *edfCache) committedReport(tasks []task) edfReport {
	if !ec.built || ec.degenerate || len(tasks) == 0 {
		return edfAnalyze(tasks)
	}
	if ec.util > 1.0+1e-9 {
		return edfReport{test: "utilization", util: ec.util, margin: 1.0 - ec.util}
	}
	limit := busyBoundFrom(ec.maxD, ec.sumC, ec.util)
	headroom := int64(maxAnalysisHorizon)
	for i := range ec.points {
		if ec.points[i].t > limit {
			break
		}
		if s := ec.points[i].t - ec.prefix[i]; s < 0 {
			// A committed set is feasible by construction; if one ever is
			// not, defer to the exact scan for the failure report.
			return edfAnalyze(tasks)
		} else if s < headroom {
			headroom = s
		}
	}
	if limit > ec.cover {
		// Merge the ladders past the coverage cap on the fly, as check
		// does. Cold path (snapshots and ledger verification), so the
		// scratch allocation is fine.
		next := make([]int64, len(tasks))
		for i := range tasks {
			t := tasks[i].D
			if ec.cover >= t {
				t = tasks[i].D + ((ec.cover-tasks[i].D)/tasks[i].T+1)*tasks[i].T
			}
			next[i] = t
		}
		base := int64(0)
		if n := len(ec.prefix); n > 0 {
			base = ec.prefix[n-1]
		}
		for {
			mt := limit + 1
			for _, t := range next {
				if t < mt {
					mt = t
				}
			}
			if mt > limit {
				break
			}
			for i := range next {
				if next[i] == mt {
					base += tasks[i].C
					next[i] += tasks[i].T
				}
			}
			if s := mt - base; s < 0 {
				return edfAnalyze(tasks)
			} else if s < headroom {
				headroom = s
			}
		}
	}
	return edfReport{feasible: true, util: ec.util, headroom: headroom,
		margin: float64(headroom)}
}

// emptyLinkCache is the shared read-only cache for links with no
// reservations (a nil linkState); check on it never mutates.
var emptyLinkCache = func() *edfCache {
	ec := &edfCache{}
	ec.rebuild(nil)
	return ec
}()
