package admission

import (
	"errors"
	"strconv"

	"repro/internal/router"
)

// Rejection is the typed explanation every admission refusal carries:
// which resource was the binding constraint, which admission test it
// failed, and by how much. Callers match with errors.As (or Explain)
// instead of parsing message text; the message text itself stays stable
// for humans and logs.
type Rejection interface {
	error
	// BindingResource names the resource that refused the channel: a
	// directed link ("(1,0)→+x", "(0,0)→inject"), a router node, or a
	// node's port partition.
	BindingResource() string
	// FailingTest names the admission test that failed: "utilization",
	// "busy_period", "link_failed", "buffers", or "conn_ids".
	FailingTest() string
	// FailMargin is the signed margin of the failure — how far past the
	// limit the request landed, in the test's own unit (utilization
	// fraction, demand slots, buffer slots). Always ≤ 0 on a rejection.
	FailMargin() float64
	// Router names the router that refused the channel — for a link
	// overload the router owning the binding link (the source router for
	// an injection-port failure), for a buffer or identifier exhaustion
	// the node itself. Never empty on a controller-produced rejection.
	Router() string
}

// Explain extracts the typed rejection from an admission error chain.
// The second return is false for errors that are not resource
// rejections (bad input, rollover violations, programming failures).
func Explain(err error) (Rejection, bool) {
	// Fast path: the controller's own rejections are never wrapped, and
	// errors.As pays for reflection on every audited rejection.
	switch r := err.(type) {
	case *ErrLinkOverload:
		return r, true
	case *ErrBufferExhausted:
		return r, true
	case *ErrIDExhausted:
		return r, true
	}
	var r Rejection
	if errors.As(err, &r) {
		return r, true
	}
	return nil, false
}

// ErrLinkOverload reports a failed per-link schedulability test: the
// candidate task set on the link exceeds the EDF budget. The message and
// binding-resource strings render lazily from the stored key — admission
// rejections are the mass-admission hot path, and most of these errors
// (the losing half of an XY/YX fallback pair) are never rendered at all.
type ErrLinkOverload struct {
	// link is the rendered name of the directed link that refused the
	// channel (the controller caches these); node the name of the router
	// owning it — the source router when inject marks the injection
	// pseudo-port (message wording differs), the upstream router of the
	// failing mesh link otherwise. Every controller rejection populates
	// node; only the inject wording renders it, so legacy message bytes
	// are unchanged and the router name travels in Router() instead.
	link   string
	node   string
	inject bool
	// Test is the sub-test that failed: "utilization" (ΣC/T > 1),
	// "busy_period" (dbf(t) > t at some step point), or "link_failed"
	// (the link is administratively down).
	Test string
	// At is the failing step point t and Demand the dbf(t) there
	// (busy_period only).
	At, Demand int64
	// Util is the task-set utilization with the candidate included.
	Util float64
	// Margin is the signed failure margin: 1−Util for the utilization
	// test, t−dbf(t) in slots for the busy-period test.
	Margin float64
}

// appendSignedFloat renders f the way fmt's %+.<prec>g would: an
// explicit sign, then strconv's 'g' formatting (which is what fmt uses
// underneath). TestRejectionMessageFormats pins the equivalence.
func appendSignedFloat(b []byte, f float64, prec int) []byte {
	if f >= 0 {
		b = append(b, '+')
	}
	return strconv.AppendFloat(b, f, 'g', prec, 64)
}

func (e *ErrLinkOverload) Error() string {
	// Manual strconv rendering instead of fmt: one of these renders on
	// every audited rejection, and rejections dominate a saturated
	// mass-admission run. The bytes match the original fmt formats
	// exactly (see TestRejectionMessageFormats).
	b := make([]byte, 0, 128)
	if e.inject {
		b = append(b, "admission: injection port at "...)
		b = append(b, e.node...)
	} else {
		b = append(b, "admission: link "...)
		b = append(b, e.link...)
	}
	b = append(b, " fails the schedulability test"...)
	switch e.Test {
	case "utilization":
		b = append(b, " (utilization "...)
		b = strconv.AppendFloat(b, e.Util, 'g', 4, 64)
		b = append(b, " > 1, margin "...)
		b = appendSignedFloat(b, e.Margin, 4)
	case "busy_period":
		b = append(b, " (busy_period at t="...)
		b = strconv.AppendInt(b, e.At, 10)
		b = append(b, ": demand "...)
		b = strconv.AppendInt(b, e.Demand, 10)
		b = append(b, " > "...)
		b = strconv.AppendInt(b, e.At, 10)
		b = append(b, ", margin "...)
		b = appendSignedFloat(b, e.Margin, -1)
	default:
		b = append(b, " ("...)
		b = append(b, e.Test...)
	}
	b = append(b, ')')
	return string(b)
}

// BindingResource implements Rejection.
func (e *ErrLinkOverload) BindingResource() string { return e.link }

// FailingTest implements Rejection.
func (e *ErrLinkOverload) FailingTest() string { return e.Test }

// FailMargin implements Rejection.
func (e *ErrLinkOverload) FailMargin() float64 { return e.Margin }

// Router implements Rejection: the router owning the refusing link.
func (e *ErrLinkOverload) Router() string { return e.node }

// ErrBufferExhausted reports a failed packet-memory reservation at one
// router: the channel's buffer bound does not fit the shared pool (port
// negative) or a port's partition. Like ErrLinkOverload, the strings
// render lazily from the stored coordinates.
type ErrBufferExhausted struct {
	// node is the rendered name of the router whose memory ran out; port
	// the binding partition under Partitioned accounting (negative under
	// SharedPool).
	node string
	port int
	// Used slots were already reserved, Need more were requested, Limit
	// is the pool or partition size.
	Used, Need, Limit int
}

func (e *ErrBufferExhausted) Error() string {
	b := make([]byte, 0, 96)
	b = append(b, "admission: "...)
	b = append(b, e.node...)
	if e.port < 0 {
		b = append(b, " out of packet buffers ("...)
	} else {
		b = append(b, " port "...)
		b = append(b, router.PortName(e.port)...)
		b = append(b, " partition full ("...)
	}
	b = strconv.AppendInt(b, int64(e.Used), 10)
	b = append(b, " used + "...)
	b = strconv.AppendInt(b, int64(e.Need), 10)
	b = append(b, " needed > "...)
	b = strconv.AppendInt(b, int64(e.Limit), 10)
	b = append(b, ')')
	return string(b)
}

// BindingResource implements Rejection.
func (e *ErrBufferExhausted) BindingResource() string {
	if e.port < 0 {
		return e.node
	}
	return e.node + "→" + router.PortName(e.port)
}

// FailingTest implements Rejection.
func (e *ErrBufferExhausted) FailingTest() string { return "buffers" }

// FailMargin implements Rejection: free slots minus needed slots,
// negative by the shortfall.
func (e *ErrBufferExhausted) FailMargin() float64 {
	return float64(e.Limit - e.Used - e.Need)
}

// Router implements Rejection: the router whose packet memory ran out.
func (e *ErrBufferExhausted) Router() string { return e.node }

// ErrIDExhausted reports connection-identifier exhaustion during id
// assignment along the route tree.
type ErrIDExhausted struct {
	// Node is the router that had no free identifier.
	Node string
	// Common is true when the failure was finding one id free across
	// every child of Node (the multicast rewrite constraint), rather
	// than any free id at Node itself.
	Common bool

	msg string
}

func (e *ErrIDExhausted) Error() string { return e.msg }

// BindingResource implements Rejection.
func (e *ErrIDExhausted) BindingResource() string { return e.Node }

// FailingTest implements Rejection.
func (e *ErrIDExhausted) FailingTest() string { return "conn_ids" }

// FailMargin implements Rejection: one more identifier than the table
// holds was needed.
func (e *ErrIDExhausted) FailMargin() float64 { return -1 }

// Router implements Rejection: the router with no free identifier.
func (e *ErrIDExhausted) Router() string { return e.Node }

// overloadError builds the typed link rejection for one analysis
// report; inject selects the injection-port message wording. node is
// always required — Router() and audit refusal records surface it even
// when the forward-link wording doesn't render it — and the legacy
// message renders byte-identically, just lazily.
func overloadError(link, node string, rep edfReport, inject bool) *ErrLinkOverload {
	return &ErrLinkOverload{
		link: link, node: node, inject: inject, Test: rep.test, At: rep.at,
		Demand: rep.demand, Util: rep.util, Margin: rep.margin,
	}
}
