package admission

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
)

// routeOfChannel walks the programmed tables and returns the coordinates
// visited from the source to local delivery.
func routeOfChannel(t *testing.T, n *mesh.Network, ch *Channel) []mesh.Coord {
	t.Helper()
	var visited []mesh.Coord
	at := ch.Src
	in := ch.SrcConn
	for hops := 0; hops < 32; hops++ {
		visited = append(visited, at)
		e := n.Router(at).Connection(in)
		if !e.Valid {
			t.Fatalf("broken chain at %s id %d", at, in)
		}
		if e.Mask.Has(router.PortLocal) {
			return visited
		}
		moved := false
		for p := 0; p < router.NumLinks; p++ {
			if e.Mask.Has(p) {
				at = at.Add(p)
				in = e.Out
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("empty mask at %s", at)
		}
	}
	t.Fatal("route did not terminate")
	return nil
}

// TestYXFallbackOnCongestion saturates the XY path's first link and
// checks the controller falls back to the disjoint YX order (§3.3:
// route selection by resource availability).
func TestYXFallbackOnCongestion(t *testing.T) {
	n := mesh.MustNew(3, 3, router.DefaultConfig())
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	// Saturate the XY path's middle link (1,0)→(2,0) with short-haul
	// channels sourced at (1,0), leaving src's own injection port free.
	filler := rtc.Spec{Imin: 4, Smax: 18, D: 8}
	for {
		if _, err := c.Admit(mesh.Coord{X: 1, Y: 0}, []mesh.Coord{{X: 2, Y: 0}}, filler); err != nil {
			break
		}
	}
	ch, err := c.Admit(src, []mesh.Coord{dst}, rtc.Spec{Imin: 16, Smax: 18, D: 80})
	if err != nil {
		t.Fatalf("no fallback route found: %v", err)
	}
	route := routeOfChannel(t, n, ch)
	// YX order: second hop must be (0,1), not (1,0).
	if route[1] != (mesh.Coord{X: 0, Y: 1}) {
		t.Errorf("route %v did not take the YX fallback", route)
	}
}

// TestFailedLinkAvoidance marks the XY path's first link failed; new
// channels must route around it, and channels that used it reroute.
func TestFailedLinkAvoidance(t *testing.T) {
	n := mesh.MustNew(3, 3, router.DefaultConfig())
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 1}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 60}
	ch, err := c.Admit(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Uses(src, router.PortXPlus) {
		t.Fatal("baseline channel did not take the XY route")
	}
	// The (0,0)→(1,0) link dies.
	if err := n.FailLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkFailed(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	// New channels avoid it in both directions.
	nch, err := c.Admit(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatalf("admission around failed link: %v", err)
	}
	if nch.Uses(src, router.PortXPlus) {
		t.Error("new channel crosses the failed link")
	}
	if _, err := c.Admit(mesh.Coord{X: 1, Y: 0}, []mesh.Coord{{X: 0, Y: 1}}, spec); err != nil {
		t.Errorf("reverse-direction admission near failure: %v", err)
	}
	// The original channel reroutes onto a live path.
	rch, err := c.Reroute(ch)
	if err != nil {
		t.Fatal(err)
	}
	if rch.Uses(src, router.PortXPlus) {
		t.Error("rerouted channel still crosses the failed link")
	}
	route := routeOfChannel(t, n, rch)
	if route[len(route)-1] != dst {
		t.Errorf("rerouted channel ends at %v, want %v", route[len(route)-1], dst)
	}
	// Double-reroute of the stale handle fails cleanly.
	if _, err := c.Reroute(ch); err == nil {
		t.Error("reroute of a torn-down channel accepted")
	}
}

// TestMarkFailedValidation rejects non-links.
func TestMarkFailedValidation(t *testing.T) {
	n := mesh.MustNew(2, 2, router.DefaultConfig())
	c, _ := New(n, DefaultConfig())
	if err := c.MarkFailed(mesh.Coord{X: 0, Y: 0}, router.PortLocal); err == nil {
		t.Error("local port accepted as a link")
	}
	if err := c.MarkFailed(mesh.Coord{X: 1, Y: 1}, router.PortXPlus); err == nil {
		t.Error("edge-of-mesh link accepted")
	}
	if err := n.FailLink(mesh.Coord{X: 1, Y: 1}, router.PortXPlus); err == nil {
		t.Error("mesh accepted failing a nonexistent link")
	}
	if err := n.FailLink(mesh.Coord{X: 0, Y: 0}, router.PortLocal); err == nil {
		t.Error("mesh accepted failing the local port")
	}
}

// TestStraightLineNoFallback: when src and dst share a row, XY and YX
// coincide; a failure on that row must reject rather than loop.
func TestStraightLineNoFallback(t *testing.T) {
	n := mesh.MustNew(3, 1, router.DefaultConfig())
	c, _ := New(n, DefaultConfig())
	if err := c.MarkFailed(mesh.Coord{X: 0, Y: 0}, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 60}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 2, Y: 0}}, spec); err == nil {
		t.Error("admission across a severed row accepted")
	}
}
