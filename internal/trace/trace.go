// Package trace records time-stamped network events into a bounded ring
// for post-mortem inspection — the software analog of watching the
// Verilog waveforms the authors used. Recorders attach to router hooks
// and sink observers; cmd/rtsim exposes the tail via -trace.
package trace

import (
	"fmt"
	"io"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/sched"
)

// Kind classifies an event.
type Kind int

const (
	// KindTCTransmit is a time-constrained packet leaving an output port.
	KindTCTransmit Kind = iota
	// KindTCDeliver is a delivery to a local processor.
	KindTCDeliver
	// KindBEDeliver is a best-effort delivery.
	KindBEDeliver
)

func (k Kind) String() string {
	switch k {
	case KindTCTransmit:
		return "tc-tx"
	case KindTCDeliver:
		return "tc-rx"
	case KindBEDeliver:
		return "be-rx"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Cycle  int64
	Kind   Kind
	Router string
	Port   int
	Conn   uint8
	Class  sched.Class
	Missed bool
	Wait   int64
}

// Ring is a fixed-capacity event recorder; the newest events win.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing returns a recorder keeping the last n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Record appends an event, evicting the oldest beyond capacity.
func (r *Ring) Record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Total returns how many events were recorded overall (including
// evicted ones).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events, oldest first.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Events() {
		miss := ""
		if e.Missed {
			miss = " MISS"
		}
		switch e.Kind {
		case KindTCTransmit:
			fmt.Fprintf(w, "%10d  %s  %s %s conn=%d class=%s wait=%d%s\n",
				e.Cycle, e.Kind, e.Router, router.PortName(e.Port), e.Conn, e.Class, e.Wait, miss)
		default:
			fmt.Fprintf(w, "%10d  %s  %s conn=%d%s\n", e.Cycle, e.Kind, e.Router, e.Conn, miss)
		}
	}
}

// AttachRouter hooks a router's transmit events into the ring. It
// chains with any hook already installed.
func AttachRouter(ring *Ring, r *router.Router) {
	prev := r.OnTCTransmit
	r.OnTCTransmit = func(ev router.TCTransmitEvent) {
		ring.Record(Event{
			Cycle:  ev.Cycle,
			Kind:   KindTCTransmit,
			Router: ev.Router,
			Port:   ev.Port,
			Conn:   ev.InConn,
			Class:  ev.Class,
			Missed: ev.Missed,
			Wait:   ev.Wait,
		})
		if prev != nil {
			prev(ev)
		}
	}
}

// AttachDeliveries hooks a node's delivery events into the ring via its
// sink observers. The at label names the node.
type DeliveryObserver struct {
	ring *Ring
	at   mesh.Coord
}

// NewDeliveryObserver returns observer callbacks for traffic.Sink.OnTC
// and OnBE.
func NewDeliveryObserver(ring *Ring, at mesh.Coord) *DeliveryObserver {
	return &DeliveryObserver{ring: ring, at: at}
}

// TC records a time-constrained delivery.
func (o *DeliveryObserver) TC(d router.DeliveredTC) {
	o.ring.Record(Event{Cycle: d.Cycle, Kind: KindTCDeliver, Router: o.at.String(), Conn: d.Conn})
}

// BE records a best-effort delivery.
func (o *DeliveryObserver) BE(d router.DeliveredBE) {
	o.ring.Record(Event{Cycle: d.Cycle, Kind: KindBEDeliver, Router: o.at.String()})
}
