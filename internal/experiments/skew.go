package experiments

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// SkewResult is the X8 study of Section 4.1's assumption that "the
// tight coupling in parallel machines minimizes the effects of clock
// skew": logical arrival times travel in packet headers, so a
// downstream router interprets them against its own clock. The study
// skews the downstream router of a two-hop channel and measures
// delivery behaviour: sub-slot skew is invisible, slot-scale skew
// shifts eligibility and deadlines one-for-one, and skew beyond the
// per-hop slack turns into deadline misses.
type SkewResult struct {
	SkewCycles []int64
	MeanLat    []float64
	Misses     []int64
	Delivered  []int64
}

// RunSkew sweeps the downstream router's clock offset. The channel has
// d = 8 slots per hop, so misses are expected once skew approaches
// +8 slots (the downstream clock running ahead erodes the deadline).
func RunSkew(skews []int64, cycles int64) (*SkewResult, error) {
	if len(skews) == 0 || cycles <= 0 {
		return nil, fmt.Errorf("experiments: invalid skew sweep config")
	}
	res := &SkewResult{SkewCycles: skews}
	for _, skew := range skews {
		cfgA := router.DefaultConfig()
		cfgB := router.DefaultConfig()
		cfgB.SkewCycles = skew
		if err := cfgB.Validate(); err != nil {
			return nil, err
		}
		k := sim.NewKernel()
		a, err := router.New("A", cfgA)
		if err != nil {
			return nil, err
		}
		b, err := router.New("B", cfgB)
		if err != nil {
			return nil, err
		}
		ab := router.NewChannel(k)
		a.ConnectOut(router.PortXPlus, ab.Out())
		b.ConnectIn(router.PortXMinus, ab.In())
		if err := a.SetConnection(1, 2, 8, 1<<router.PortXPlus); err != nil {
			return nil, err
		}
		if err := b.SetConnection(2, 7, 8, 1<<router.PortLocal); err != nil {
			return nil, err
		}
		src := &skewSource{r: a}
		k.Register(src)
		k.Register(a)
		k.Register(b)
		var lat meanAcc
		collect := &skewCollector{r: b, lat: &lat}
		k.Register(collect)
		k.Run(cycles)
		res.MeanLat = append(res.MeanLat, lat.mean())
		res.Misses = append(res.Misses, b.Stats.TCDeadlineMisses+a.Stats.TCDeadlineMisses)
		res.Delivered = append(res.Delivered, b.Stats.TCDelivered)
	}
	return res, nil
}

// meanAcc is a minimal mean accumulator.
type meanAcc struct {
	sum float64
	n   int64
}

func (s *meanAcc) add(v float64) { s.sum += v; s.n++ }
func (s *meanAcc) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// skewSource injects one on-time packet per 16 slots, stamped on A's
// clock (skew zero — global time).
type skewSource struct {
	r    *router.Router
	next int64
	seq  uint32
}

func (s *skewSource) Name() string { return "skew-src" }
func (s *skewSource) Tick(now sim.Cycle) {
	if int64(now) < s.next {
		return
	}
	s.next = int64(now) + 16*packet.TCBytes
	p := packet.TCPacket{Conn: 1, Stamp: packet.StampOf(s.r.SlotNow(int64(now)))}
	traffic.EncodeProbe(p.Payload[:], int64(now), s.seq)
	s.seq++
	s.r.InjectTC(p)
}

type skewCollector struct {
	r   *router.Router
	lat *meanAcc
}

func (c *skewCollector) Name() string { return "skew-sink" }
func (c *skewCollector) Tick(sim.Cycle) {
	for _, d := range c.r.DrainTC() {
		inj, _ := traffic.DecodeProbe(d.Payload[:])
		if inj > 0 && inj <= d.Cycle {
			c.lat.add(float64(d.Cycle - inj))
		}
	}
}

// Table renders the sweep.
func (r *SkewResult) Table() *Table {
	t := &Table{
		Title:  "X8 — clock skew tolerance (two hops, d=8 slots/hop; B's clock offset vs. A)",
		Header: []string{"skew (cycles)", "skew (slots)", "mean latency (cyc)", "misses", "delivered"},
	}
	for i, sk := range r.SkewCycles {
		t.AddRow(d(sk), fmt.Sprintf("%+.1f", float64(sk)/packet.TCBytes),
			f1(r.MeanLat[i]), d(r.Misses[i]), d(r.Delivered[i]))
	}
	t.AddNote("negative skew (B behind) holds packets longer as early traffic; positive skew")
	t.AddNote("erodes the local deadline and misses appear as skew approaches d — the §4.1 bound")
	return t
}
