package admission

import (
	"math/rand"
	"testing"
)

// randTask draws parameters inside the router's 7-bit range, skewed so
// feasible, utilization-failing, and busy-period-failing candidates all
// occur.
func randTask(rng *rand.Rand) task {
	c := int64(1 + rng.Intn(12))
	d := c + int64(rng.Intn(100))
	return task{C: c, T: c + int64(rng.Intn(120)), D: d}
}

// TestEDFCacheDifferential drives an edfCache through random add/remove
// sequences and, after every mutation, checks random candidates against
// the from-scratch analysis. The contract is exact equality of the whole
// report: verdict, bitwise utilization, headroom, and the failing step
// point in edfAnalyze's own iteration order.
func TestEDFCacheDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ec edfCache
		ec.rebuild(nil)
		var tasks []task
		var sc evalScratch
		for op := 0; op < 80; op++ {
			if len(tasks) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(tasks))
				tk := tasks[i]
				tasks = append(tasks[:i], tasks[i+1:]...)
				ec.removeTask(tasks, tk)
			} else {
				tk := randTask(rng)
				if !edfFeasible(append(append([]task(nil), tasks...), tk)) && rng.Intn(2) == 0 {
					continue // keep the committed set mostly feasible, like real ledgers
				}
				tasks = append(tasks, tk)
				ec.addTask(tasks, tk)
			}
			for trial := 0; trial < 4; trial++ {
				cand := randTask(rng)
				if trial == 3 {
					// An invalid candidate must reproduce the "validity"
					// failure with util summed over the committed set only.
					cand = task{C: 5, T: 4, D: 3}
				}
				got := ec.check(tasks, cand, &sc)
				want := edfAnalyze(append(append([]task(nil), tasks...), cand))
				if got != want {
					t.Fatalf("seed %d op %d: cache check %+v, edfAnalyze %+v\ntasks=%v cand=%+v",
						seed, op, got, want, tasks, cand)
				}
			}
		}
	}
}

// TestEDFCacheRemoveCompaction pins the stale-point hazard: after the
// only committed task is removed, its leftover step points must not
// surface slack values edfAnalyze never evaluates.
func TestEDFCacheRemoveCompaction(t *testing.T) {
	var ec edfCache
	tk := task{C: 2, T: 10, D: 5}
	tasks := []task{tk}
	ec.rebuild(tasks)
	tasks = tasks[:0]
	ec.removeTask(tasks, tk)
	if len(ec.points) != 0 {
		t.Fatalf("removed task left %d step points in the cache", len(ec.points))
	}
	var sc evalScratch
	cand := task{C: 1, T: 200, D: 100}
	got := ec.check(tasks, cand, &sc)
	want := edfAnalyze([]task{cand})
	if got != want {
		t.Fatalf("post-removal check %+v, edfAnalyze %+v", got, want)
	}
	if got.headroom != 99 {
		t.Fatalf("headroom %d contaminated by stale points, want 99", got.headroom)
	}
}

// TestEDFCacheUtilBitExact removes tasks in an order that would diverge
// under subtract-style float updates and checks the utilization float
// stays bitwise equal to the in-order sum.
func TestEDFCacheUtilBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ec edfCache
	ec.rebuild(nil)
	var tasks []task
	for i := 0; i < 30; i++ {
		tk := task{C: 1 + int64(rng.Intn(3)), T: 3 + int64(rng.Intn(97)), D: 3 + int64(rng.Intn(60))}
		if tk.C > tk.D {
			tk.D = tk.C
		}
		tasks = append(tasks, tk)
		ec.addTask(tasks, tk)
	}
	for len(tasks) > 0 {
		i := rng.Intn(len(tasks))
		tk := tasks[i]
		tasks = append(tasks[:i], tasks[i+1:]...)
		ec.removeTask(tasks, tk)
		var want float64
		for _, s := range tasks {
			want += float64(s.C) / float64(s.T)
		}
		if ec.util != want {
			t.Fatalf("after %d removals: cache util %v, in-order sum %v", 30-len(tasks), ec.util, want)
		}
	}
}

// BenchmarkLinkCheckCached measures one candidate check against a link
// holding many committed channels — the operation the incremental cache
// exists to flatten — with the from-scratch path as the contrast.
func BenchmarkLinkCheckCached(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tasks []task
	var ec edfCache
	ec.rebuild(nil)
	for len(tasks) < 24 {
		tk := task{C: 1, T: 40 + int64(rng.Intn(80)), D: 30 + int64(rng.Intn(60))}
		if !edfFeasible(append(append([]task(nil), tasks...), tk)) {
			continue
		}
		tasks = append(tasks, tk)
		ec.addTask(tasks, tk)
	}
	cand := task{C: 1, T: 96, D: 48}
	var sc evalScratch
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ec.check(tasks, cand, &sc)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.tasks = append(append(sc.tasks[:0], tasks...), cand)
			edfAnalyze(sc.tasks)
		}
	})
}
