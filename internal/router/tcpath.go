package router

import (
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/timing"
)

// tcInput is the time-constrained receive engine of one input source:
// the four mesh links plus the injection port. It assembles arriving
// 20-byte packets in nominal staging space, obtains a memory slot from
// the idle-address FIFO, writes the packet to the shared memory over the
// internal bus in chunk-sized transfers, and installs the scheduling
// leaf from the connection-table entry.
type tcInput struct {
	r  *Router
	id int // input index: 0..3 mesh links, 4 injection

	asm  [packet.TCBytes]byte
	nAsm int
	// pending holds fully assembled packets awaiting a memory write. The
	// paper gives each port "nominal buffer space" to ride out bus
	// contention; two packets of staging suffices at these bandwidths,
	// so the staging space is a fixed in-struct array.
	pending  [pendingCap][packet.TCBytes]byte
	nPending int

	// write in progress
	wActive bool
	wSlot   int
	wChunk  int
	wData   [packet.TCBytes]byte

	// injection streaming: the local processor hands over packets which
	// cross the injection port at link rate, one byte per cycle.
	injCount int
	injPkt   [packet.TCBytes]byte

	// wire-integrity state (mesh links under Config.Integrity): rxCRC
	// folds arriving bytes for the tail-phit checksum compare; resync
	// discards the remainder of a packet that lost framing until the
	// next head phit.
	rxCRC  byte
	resync bool

	// virtual cut-through state (Section 7 extension): when cutting, the
	// remaining bytes of the arriving packet stream straight to the
	// output port without touching the packet memory. cutFIFO absorbs the
	// two-byte skew between arrival and the rewritten header going out.
	// cutFIFO is head-indexed: emitCut advances cutHead instead of
	// reslicing, so the skew buffer's backing array is reused.
	cutting bool
	cutIdx  int
	cutFIFO []byte
	cutHead int
}

// popPending removes and returns the oldest staged packet.
func (u *tcInput) popPending() [packet.TCBytes]byte {
	p := u.pending[0]
	copy(u.pending[:], u.pending[1:])
	u.nPending--
	return p
}

const pendingCap = 2

// acceptWire consumes one time-constrained phit from the link wire.
// Without Integrity it reduces to the trusted-byte path; with it, the
// engine enforces framing (head/tail alignment, no gaps) and verifies
// the frame checksum carried on the tail phit's sideband before the
// packet may claim a memory slot — a corrupted packet is dropped here,
// before any resource is allocated, and the reservation absorbs the
// loss as slack.
func (u *tcInput) acceptWire(ph packet.Phit, now int64) {
	if !u.r.cfg.Integrity {
		u.acceptByte(ph.Data, now)
		return
	}
	if u.resync {
		// Discarding a damaged frame: its end is the next Tail mark (a
		// Head instead means the tail itself was lost and a new frame
		// has begun — accept it normally).
		if ph.Head {
			u.resync = false
		} else {
			if ph.Tail {
				u.resync = false
			}
			return
		}
	}
	if ph.Head && u.nAsm != 0 {
		// A new packet started mid-assembly: the old one lost its tail.
		u.framingDrop()
	}
	if !ph.Head && u.nAsm == 0 {
		// Mid-packet byte with no assembly open: the head was lost.
		// Count the packet once and skip the rest of its bytes.
		u.framingDrop()
		u.resync = !ph.Tail
		return
	}
	if u.nAsm == 0 {
		u.rxCRC = 0
	}
	u.rxCRC = packet.CRC8Update(u.rxCRC, ph.Data)
	u.asm[u.nAsm] = ph.Data
	u.nAsm++
	if u.nAsm < packet.TCBytes {
		return
	}
	u.nAsm = 0
	if !ph.Tail || !ph.SideValid || ph.Side != u.rxCRC {
		u.r.Stats.TCCorruptDrops++
		u.r.dropTC(metrics.DropTCCorrupt, u.asm[0], u.id)
		return
	}
	if u.nPending >= pendingCap {
		u.r.Stats.TCDropsStaging++
		u.r.dropTC(metrics.DropTCStaging, u.asm[0], -1)
		return
	}
	u.pending[u.nPending] = u.asm
	u.nPending++
}

// framingDrop abandons a partial assembly whose frame can no longer be
// trusted (lost head, lost tail, or a gap mid-packet).
func (u *tcInput) framingDrop() {
	u.r.Stats.TCFramingDrops++
	u.r.dropTC(metrics.DropTCFraming, u.asm[0], u.id)
	u.nAsm = 0
}

// acceptByte consumes one time-constrained byte from the wire (or the
// injection stream).
func (u *tcInput) acceptByte(b byte, now int64) {
	if u.cutting {
		if len(u.cutFIFO) == cap(u.cutFIFO) && u.cutHead > 0 {
			n := copy(u.cutFIFO, u.cutFIFO[u.cutHead:])
			u.cutFIFO = u.cutFIFO[:n]
			u.cutHead = 0
		}
		u.cutFIFO = append(u.cutFIFO, b)
		u.cutIdx++
		if u.cutIdx == packet.TCBytes {
			u.cutting = false
		}
		return
	}
	u.asm[u.nAsm] = b
	u.nAsm++
	if u.r.cfg.VCT && u.nAsm == packet.TCHeaderBytes && u.tryCutThrough(now) {
		return
	}
	if u.nAsm == packet.TCBytes {
		u.nAsm = 0
		if u.nPending >= pendingCap {
			// Staging overrun: only possible when traffic violates its
			// reservation badly enough to saturate the memory bus.
			u.r.Stats.TCDropsStaging++
			u.r.dropTC(metrics.DropTCStaging, u.asm[0], -1)
			return
		}
		u.pending[u.nPending] = u.asm
		u.nPending++
	}
}

// tryCutThrough attempts the Section 7 virtual cut-through: if the
// connection's output port is idle and the scheduler holds nothing
// eligible for it, the arriving packet proceeds directly to the link
// without visiting the packet memory. Only unicast connections cut
// through (a multicast fan-out falls back to buffering, which the
// paper's sketch does not address). It returns true when the cut path is
// established.
func (u *tcInput) tryCutThrough(now int64) bool {
	// Integrity requires store-and-forward: the frame checksum can only
	// be verified once the whole packet has arrived, and the cut path
	// would forward bytes before the tail's checksum is seen.
	if u.r.cfg.Integrity {
		return false
	}
	// The skew FIFO belongs to one cut at a time: a new cut may only
	// start once the previous cut's consumer has drained every byte
	// (resetting the FIFO earlier would wedge that output mid-packet).
	if u.cutting || u.cutHead < len(u.cutFIFO) {
		return false
	}
	hdr := packet.DecodeTC([packet.TCBytes]byte{u.asm[0], u.asm[1]})
	ent := u.r.table[hdr.Conn]
	if !ent.Valid || ent.Mask.Count() != 1 {
		return false
	}
	var port int
	for p := 0; p < NumPorts; p++ {
		if ent.Mask.Has(p) {
			port = p
		}
	}
	out := u.r.tcOut[port]
	if out.txActive || out.staged || out.fetching || out.candValid || out.cutIn != nil {
		return false
	}
	if port != PortLocal && u.r.out[port] == nil {
		return false
	}
	nowSlot := u.r.slotNow(now)
	if sel := u.r.schedq.Select(port, nowSlot, u.r.horizons[port]); sel.Class != sched.ClassNone {
		return false
	}
	// The arriving packet itself must be serviceable now: on-time, or
	// early within the port's horizon ("no other packets have smaller
	// sorting keys", Section 7).
	l := u.r.wheel.Wrap(timing.Slot(hdr.Stamp))
	dl := u.r.wheel.Add(l, uint32(ent.Delay))
	k, early, _ := u.r.wheel.SortKey(l, dl, nowSlot)
	class := sched.ClassOnTime
	if early {
		if !u.r.wheel.WithinHorizon(k, u.r.horizons[port]) {
			return false
		}
		class = sched.ClassEarly
	}
	out.cutIn = u
	out.cutIdx = 0
	out.cutHdr = [packet.TCHeaderBytes]byte{ent.Out, packet.StampOf(dl)}
	out.cutLeaf = sched.Leaf{L: l, Dl: dl, OutConn: ent.Out, InConn: hdr.Conn, EnqueueCycle: now}
	out.cutClass = class
	u.cutting = true
	u.cutIdx = packet.TCHeaderBytes
	u.cutFIFO = u.cutFIFO[:0]
	u.cutHead = 0
	u.nAsm = 0
	u.r.Stats.TCCutThroughs++
	if u.r.met != nil {
		u.r.met.CutThroughs.Inc()
	}
	if u.r.OnLifecycle != nil {
		u.r.lifecycle(LifecycleEvent{
			Kind: EvCutThrough, Port: port,
			InConn: hdr.Conn, OutConn: ent.Out, Class: class,
			Stamp: dl, Slack: u.r.wheel.SignedDiff(dl, nowSlot),
		})
	}
	return true
}

// launchWrite starts the memory write of the oldest pending packet.
func (u *tcInput) launchWrite() {
	if u.wActive {
		if u.r.blame != nil && u.nPending > 0 {
			// A fully assembled packet is staged behind another memory
			// write: it burns a cycle waiting on the shared bus. Byte 0
			// of the staged packet is its connection id.
			u.r.blameNoteAt(-1, u.pending[0][0], false, CauseMemBusWait, 0)
		}
		return
	}
	if u.nPending == 0 {
		return
	}
	slot, ok := u.r.mem.alloc()
	if !ok {
		// Reservation guarantees this cannot happen for admitted traffic
		// (Section 3.4); count and drop for misbehaving workloads.
		u.r.Stats.TCDropsNoSlot++
		u.r.dropTC(metrics.DropTCNoSlot, u.pending[0][0], -1)
		u.popPending()
		return
	}
	u.wActive = true
	u.wSlot = slot
	u.wChunk = 0
	u.wData = u.popPending()
	u.r.noteMemOccupancy()
}

func (u *tcInput) wantsBus() bool { return u.wActive }

// busGrant writes one chunk; on the last chunk the packet is live in
// memory and its scheduling leaf is installed.
func (u *tcInput) busGrant() {
	cb := u.r.cfg.ChunkBytes
	u.r.mem.writeChunk(u.wSlot, u.wChunk, cb, u.wData[u.wChunk*cb:])
	u.wChunk++
	if u.wChunk*cb < packet.TCBytes {
		return
	}
	u.wActive = false
	u.finishPacket()
}

func (u *tcInput) finishPacket() {
	p := packet.DecodeTC(u.wData)
	ent := u.r.table[p.Conn]
	if !ent.Valid {
		u.r.Stats.TCDropsNoRoute++
		u.r.mem.free(u.wSlot)
		u.r.noteMemOccupancy()
		u.r.dropTC(metrics.DropTCNoRoute, p.Conn, -1)
		return
	}
	l := u.r.wheel.Wrap(timing.Slot(p.Stamp))
	leaf := sched.Leaf{
		L:            l,
		Dl:           u.r.wheel.Add(l, uint32(ent.Delay)),
		Mask:         ent.Mask,
		OutConn:      ent.Out,
		InConn:       p.Conn,
		EnqueueCycle: u.r.nowCycle,
	}
	if err := u.r.schedq.Install(u.wSlot, leaf); err != nil {
		// Internal invariant violation; surface loudly in tests.
		panic("router " + u.r.name + ": leaf install: " + err.Error())
	}
	u.r.Stats.TCArrived++
	if u.r.met != nil {
		u.r.met.TCEnqueued.Inc()
	}
	if u.r.OnLifecycle != nil {
		u.r.lifecycle(LifecycleEvent{
			Kind: EvEnqueue, Port: -1, InConn: p.Conn, OutConn: ent.Out,
			Stamp: leaf.Dl,
			Slack: u.r.wheel.SignedDiff(leaf.Dl, u.r.slotNow(u.r.nowCycle)),
		})
	}
}

// tcOutput is the time-constrained transmit engine of one output port.
// It pipelines candidate selection (via the shared comparator tree),
// memory fetch, and transmission, so scheduling overlaps transmission as
// in the chip.
type tcOutput struct {
	r    *Router
	port int

	// candidate awaiting fetch
	cand      sched.Selection
	candValid bool

	// fetch in progress
	fetching bool
	fChunk   int

	// staged packet, header already rewritten for the next hop
	staged bool
	sBuf   [packet.TCBytes]byte
	sSlot  int
	sLeaf  sched.Leaf

	// active transmission
	txActive bool
	txBuf    [packet.TCBytes]byte
	txIdx    int
	txCRC    byte  // frame checksum for the tail phit (Integrity only)
	txConn   uint8 // arriving conn id of the packet on the wire (blame)

	// virtual cut-through source, when a packet streams directly from an
	// input engine
	cutIn    *tcInput
	cutIdx   int
	cutHdr   [packet.TCHeaderBytes]byte
	cutLeaf  sched.Leaf
	cutClass sched.Class

	// local reception assembly (PortLocal only)
	rxBuf [packet.TCBytes]byte
}

// schedule refreshes the port's candidate from the shared tree. A staged
// packet may be displaced by a better selection until its transmission
// starts (the hardware's one-packet scheduling slack).
func (o *tcOutput) schedule(nowSlot timing.Stamp) {
	if o.cutIn != nil {
		return // port owned by a cut-through stream
	}
	if o.txActive && o.staged {
		return // next packet already staged
	}
	if o.fetching {
		return // mid-fetch; commit to it
	}
	sel := o.r.schedq.Select(o.port, nowSlot, o.r.horizons[o.port])
	if sel.Class == sched.ClassNone {
		if !o.staged {
			o.candValid = false
		}
		return
	}
	if o.staged {
		if sel.Slot == o.sSlot {
			return
		}
		// Better packet arrived since staging: discard the prefetch.
		o.staged = false
		o.r.Stats.TCStageReplaced++
	}
	o.cand = sel
	o.candValid = true
}

// launchFetch starts reading the candidate from packet memory.
func (o *tcOutput) launchFetch() {
	if !o.candValid || o.fetching || o.staged {
		return
	}
	o.fetching = true
	o.fChunk = 0
}

func (o *tcOutput) wantsBus() bool { return o.fetching }

func (o *tcOutput) busGrant() {
	cb := o.r.cfg.ChunkBytes
	o.r.mem.readChunk(o.cand.Slot, o.fChunk, cb, o.sBuf[o.fChunk*cb:])
	o.fChunk++
	if o.fChunk*cb < packet.TCBytes {
		return
	}
	o.fetching = false
	o.candValid = false
	o.staged = true
	o.sSlot = o.cand.Slot
	o.sLeaf = o.r.schedq.Leaf(o.sSlot)
	// Rewrite the header for the next hop: the new connection id and the
	// local deadline, which the downstream router reads as ℓ(m).
	o.sBuf[0] = o.sLeaf.OutConn
	o.sBuf[1] = packet.StampOf(o.sLeaf.Dl)
}

// stagedClass classifies the staged packet at the current slot time.
// Early packets promote to on-time automatically as the clock advances.
func (o *tcOutput) stagedClass(nowSlot timing.Stamp) sched.Class {
	k, early, _ := o.r.wheel.SortKey(o.sLeaf.L, o.sLeaf.Dl, nowSlot)
	if !early {
		return sched.ClassOnTime
	}
	if o.r.wheel.WithinHorizon(k, o.r.horizons[o.port]) {
		return sched.ClassEarly
	}
	return sched.ClassNone
}

// startTx commits the staged packet to the wire: the port's bit in the
// leaf mask clears, and the memory slot returns to the idle FIFO once
// every port has transmitted its copy.
func (o *tcOutput) startTx(nowSlot timing.Stamp, class sched.Class) {
	empty, err := o.r.schedq.ClearPort(o.sSlot, o.port)
	if err != nil {
		panic("router " + o.r.name + ": clear port: " + err.Error())
	}
	if empty {
		o.r.mem.free(o.sSlot)
		o.r.noteMemOccupancy()
	}
	_, overdue := o.r.wheel.Laxity(o.sLeaf.Dl, nowSlot)
	if overdue {
		o.r.Stats.TCDeadlineMisses++
	}
	o.r.Stats.TCTransmitted[o.port]++
	wait := o.r.nowCycle - o.sLeaf.EnqueueCycle
	if m := o.r.met; m != nil {
		m.ArbWins[o.port][arbClass(class)].Inc()
		m.TCDequeued[o.port].Inc()
		if overdue {
			m.DeadlineMisses.Inc()
		}
	}
	if o.r.OnTCTransmit != nil {
		o.r.OnTCTransmit(TCTransmitEvent{
			Router:  o.r.name,
			Port:    o.port,
			InConn:  o.sLeaf.InConn,
			OutConn: o.sLeaf.OutConn,
			Class:   class,
			Cycle:   o.r.nowCycle,
			Missed:  overdue,
			Wait:    wait,
		})
	}
	if o.r.OnLifecycle != nil {
		ev := LifecycleEvent{
			Port: o.port, InConn: o.sLeaf.InConn, OutConn: o.sLeaf.OutConn,
			Class: class, Missed: overdue, Wait: wait,
			Stamp: o.sLeaf.Dl, Slack: o.r.wheel.SignedDiff(o.sLeaf.Dl, nowSlot),
		}
		ev.Kind = EvArbWin
		o.r.lifecycle(ev)
		ev.Kind = EvTransmit
		o.r.lifecycle(ev)
	}
	o.txBuf = o.sBuf
	if o.r.cfg.Integrity {
		o.txCRC = packet.CRC8(o.sBuf[:])
	}
	o.txActive = true
	o.txIdx = 0
	o.txConn = o.sLeaf.InConn
	o.staged = false
}

// emitByte sends the next byte of the active transmission and reports
// packet completion.
func (o *tcOutput) emitByte() (b byte, head, tail bool) {
	b = o.txBuf[o.txIdx]
	head = o.txIdx == 0
	tail = o.txIdx == packet.TCBytes-1
	o.txIdx++
	if tail {
		o.txActive = false
	}
	return b, head, tail
}
