package router

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

// TestTCSaturatedLinkThroughput checks the paper's §4.2 claim that the
// router "overlaps communication scheduling with packet transmission to
// maximize utilization of the network links": a connection reserving
// the full link (Imin = 1 slot) must sustain one packet per slot with
// no pipeline bubbles and no deadline misses.
func TestTCSaturatedLinkThroughput(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	if err := r.a.SetConnection(1, 2, 2, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 2, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	const messages = 200
	for i := 0; i < messages; i++ {
		// One packet per slot, stamped with its own slot as ℓ0.
		r.a.InjectTC(tcPkt(1, uint8(i), byte(i)))
	}
	// messages slots of injection + pipeline/drain margin.
	r.k.Run(int64(messages)*packet.TCBytes + 2000)
	if got := r.b.Stats.TCDelivered; got != messages {
		t.Fatalf("delivered %d/%d at full reservation", got, messages)
	}
	if r.a.Stats.TCDeadlineMisses != 0 || r.b.Stats.TCDeadlineMisses != 0 {
		t.Errorf("misses at sustainable full load: A=%d B=%d",
			r.a.Stats.TCDeadlineMisses, r.b.Stats.TCDeadlineMisses)
	}
	// Throughput check: the link carried one packet per slot — the
	// last delivery lands within the drain margin of the injection end.
	d := r.b.DrainTC()
	last := d[len(d)-1].Cycle
	if limit := int64(messages)*packet.TCBytes + 200; last > limit {
		t.Errorf("last delivery at cycle %d; pipeline bubbles pushed past %d", last, limit)
	}
	if r.a.FreeSlots() != DefaultConfig().Slots || r.b.FreeSlots() != DefaultConfig().Slots {
		t.Error("memory slots leaked under saturation")
	}
}

// TestBERoundRobinFairness converges two best-effort flows on one link
// and checks round-robin arbitration interleaves whole packets fairly.
func TestBERoundRobinFairness(t *testing.T) {
	// Three routers in a line: A and C both send into B... the pair rig
	// only has A and B, so use injection + link input at B competing for
	// B's local port: A→B traffic and B's own injection both target B's
	// reception port.
	r := newPairRig(t, DefaultConfig())
	const n = 12
	for i := 0; i < n; i++ {
		fromA, err := packet.NewBE(1, 0, make([]byte, 40))
		if err != nil {
			t.Fatal(err)
		}
		r.a.InjectBE(fromA)
		local, err := packet.NewBE(0, 0, make([]byte, 40))
		if err != nil {
			t.Fatal(err)
		}
		r.b.InjectBE(local)
	}
	r.k.RunUntil(func() bool { return r.b.Stats.BEDelivered >= 2*n }, 100000)
	if r.b.Stats.BEDelivered != 2*n {
		t.Fatalf("delivered %d/%d", r.b.Stats.BEDelivered, 2*n)
	}
	// Fairness: neither source finished drastically before the other —
	// the final quarter of deliveries must include both sources. With
	// per-packet round-robin they interleave ~1:1; a starved source
	// would finish entirely after the favoured one. We approximate by
	// checking total service bytes over the shared port match.
	if got := r.b.Stats.BEBytes[PortLocal]; got != int64(2*n*44) {
		t.Errorf("local port carried %d bytes, want %d", got, 2*n*44)
	}
}

// TestRandomMixedSoak fuzzes a router pair with random interleavings of
// time-constrained and best-effort traffic and checks global
// conservation invariants afterwards: everything injected is delivered
// or accounted, buffers are reclaimed, flow control never overruns.
func TestRandomMixedSoak(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.VCT = rng.Intn(2) == 1
		for p := range cfg.Horizons {
			cfg.Horizons[p] = uint32(rng.Intn(30))
		}
		r := newPairRig(t, cfg)
		// Generous delay bounds: nothing should miss or drop.
		if err := r.a.SetConnection(1, 2, 60, maskOf(PortXPlus)); err != nil {
			t.Fatal(err)
		}
		if err := r.b.SetConnection(2, 7, 60, maskOf(PortLocal)); err != nil {
			t.Fatal(err)
		}
		if err := r.b.SetConnection(3, 4, 60, maskOf(PortXMinus)); err != nil {
			t.Fatal(err)
		}
		if err := r.a.SetConnection(4, 8, 60, maskOf(PortLocal)); err != nil {
			t.Fatal(err)
		}
		tcAB, tcBA, beAB, beBA := 0, 0, 0, 0
		var beBytesAB, beBytesBA int64
		for i := 0; i < 120; i++ {
			slot := r.a.SlotNow(int64(r.k.Now()))
			switch rng.Intn(4) {
			case 0:
				r.a.InjectTC(tcPkt(1, packet.StampOf(slot), byte(i)))
				tcAB++
			case 1:
				r.b.InjectTC(tcPkt(3, packet.StampOf(slot), byte(i)))
				tcBA++
			case 2:
				sz := 10 + rng.Intn(200)
				frame, err := packet.NewBE(1, 0, make([]byte, sz))
				if err != nil {
					t.Fatal(err)
				}
				r.a.InjectBE(frame)
				beAB++
				beBytesAB += int64(len(frame))
			default:
				sz := 10 + rng.Intn(200)
				frame, err := packet.NewBE(-1, 0, make([]byte, sz))
				if err != nil {
					t.Fatal(err)
				}
				r.b.InjectBE(frame)
				beBA++
				beBytesBA += int64(len(frame))
			}
			r.k.Run(int64(rng.Intn(60)))
		}
		r.k.Run(60 * packet.TCBytes * 3) // drain everything
		if got := r.b.Stats.TCDelivered; got != int64(tcAB) {
			t.Errorf("seed %d: B delivered %d TC, want %d", seed, got, tcAB)
		}
		if got := r.a.Stats.TCDelivered; got != int64(tcBA) {
			t.Errorf("seed %d: A delivered %d TC, want %d", seed, got, tcBA)
		}
		if got := r.b.Stats.BEDelivered; got != int64(beAB) {
			t.Errorf("seed %d: B delivered %d BE, want %d", seed, got, beAB)
		}
		if got := r.a.Stats.BEDelivered; got != int64(beBA) {
			t.Errorf("seed %d: A delivered %d BE, want %d", seed, got, beBA)
		}
		for _, rt := range []*Router{r.a, r.b} {
			if rt.Stats.BEBufferOverruns != 0 || rt.Stats.BEMalformed != 0 || rt.Stats.BEMisroutes != 0 {
				t.Errorf("seed %d: %s flow-control violations: %+v", seed, rt.Name(), rt.Stats)
			}
			if rt.Stats.TCDropsNoSlot != 0 || rt.Stats.TCDropsNoRoute != 0 || rt.Stats.TCDropsStaging != 0 {
				t.Errorf("seed %d: %s dropped TC traffic: %+v", seed, rt.Name(), rt.Stats)
			}
			if rt.FreeSlots() != cfg.Slots {
				t.Errorf("seed %d: %s leaked %d slots", seed, rt.Name(), cfg.Slots-rt.FreeSlots())
			}
			if occ := rt.Scheduler().Occupancy(); occ != 0 {
				t.Errorf("seed %d: %s has %d stuck leaves", seed, rt.Name(), occ)
			}
		}
		// Payload integrity across the BE path: byte counts on the wire
		// match the frames injected.
		if got := r.a.Stats.BEBytes[PortXPlus]; got != beBytesAB {
			t.Errorf("seed %d: A sent %d BE bytes on +x, want %d", seed, got, beBytesAB)
		}
	}
}

// TestTCPayloadIntegrityUnderLoad streams distinct payloads through a
// congested link and verifies every delivered packet carries exactly
// what was injected (memory chunking, header rewrite and preemption
// must never corrupt data).
func TestTCPayloadIntegrityUnderLoad(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	if err := r.a.SetConnection(1, 2, 50, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 50, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// Congest with best-effort noise the whole time.
	noise, err := packet.NewBE(1, 0, make([]byte, 3000))
	if err != nil {
		t.Fatal(err)
	}
	r.a.InjectBE(noise)
	const n = 40
	for i := 0; i < n; i++ {
		p := packet.TCPacket{Conn: 1, Stamp: packet.StampOf(r.a.SlotNow(int64(r.k.Now())))}
		for j := range p.Payload {
			p.Payload[j] = byte(i*31 + j*7)
		}
		r.a.InjectTC(p)
		r.k.Run(25)
	}
	r.k.Run(5000)
	got := r.b.DrainTC()
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, d := range got {
		for j := range d.Payload {
			if d.Payload[j] != byte(i*31+j*7) {
				t.Fatalf("packet %d byte %d corrupted: %#x", i, j, d.Payload[j])
			}
		}
	}
}
