package experiments

import (
	"os"
	"strconv"
	"testing"
)

// profFamily selects the traffic family by ADMISSION_PROFILE (an index
// into DefaultCapacityFamilies; any non-integer means 0).
func profFamily() CapacityFamily {
	fams := DefaultCapacityFamilies()
	i, err := strconv.Atoi(os.Getenv("ADMISSION_PROFILE"))
	if err != nil || i < 0 || i >= len(fams) {
		i = 0
	}
	return fams[i]
}

// TestAdmissionProfileSeq is a profiling harness, not a correctness
// test: it runs only the sequential incremental leg of the admission
// campaign so a -cpuprofile isolates that phase. Gated behind an env
// var so normal test runs skip it.
func TestAdmissionProfileSeq(t *testing.T) {
	if os.Getenv("ADMISSION_PROFILE") == "" {
		t.Skip("set ADMISSION_PROFILE=1 to run the profiling harness")
	}
	reqs := admissionRequests(profFamily(), 16, 16, 30000)
	run, err := sequentialRun(16, 16, false, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("admitted=%d rejected=%d secs=%.3f", run.admitted, run.rejected, run.secs)
}

// TestAdmissionProfileRef is the reference-path twin.
func TestAdmissionProfileRef(t *testing.T) {
	if os.Getenv("ADMISSION_PROFILE") == "" {
		t.Skip("set ADMISSION_PROFILE=1 to run the profiling harness")
	}
	reqs := admissionRequests(profFamily(), 16, 16, 30000)
	run, err := sequentialRun(16, 16, true, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("admitted=%d rejected=%d secs=%.3f", run.admitted, run.rejected, run.secs)
}
