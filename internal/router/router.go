package router

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timing"
)

// DeliveredTC is a time-constrained packet handed to the local processor
// by the reception port.
type DeliveredTC struct {
	Conn    uint8 // connection identifier programmed for local delivery
	Stamp   uint8 // local deadline stamp carried in the header
	Payload [packet.TCPayloadBytes]byte
	Cycle   int64
}

// DeliveredBE is a best-effort packet handed to the local processor.
type DeliveredBE struct {
	Payload []byte
	Cycle   int64
}

// TCTransmitEvent describes one time-constrained packet transmission,
// reported through Router.OnTCTransmit for per-connection accounting
// (Figure 7 style service curves).
type TCTransmitEvent struct {
	Router  string
	Port    int
	InConn  uint8
	OutConn uint8
	Class   sched.Class
	Cycle   int64
	Missed  bool
	Wait    int64 // cycles from leaf install to transmission start
}

// Stats aggregates the router's hardware counters.
type Stats struct {
	TCArrived        int64 // packets written into the shared memory
	TCTransmitted    [NumPorts]int64
	TCDelivered      int64
	TCDeadlineMisses int64
	TCCutThroughs    int64
	TCStageReplaced  int64
	TCDropsNoSlot    int64 // idle-address FIFO empty (reservation violated)
	TCDropsNoRoute   int64 // no valid connection-table entry
	TCDropsStaging   int64 // input staging overrun
	TCDeadPortDrops  int64 // packet routed to an unwired link

	TCCorruptDrops int64 // frame-checksum failures at an input (Integrity)
	TCFramingDrops int64 // assemblies that lost framing (missing or stray phit)

	BEBytes          [NumPorts]int64
	BEPacketsSent    [NumPorts]int64
	BEDelivered      int64
	BEMisroutes      int64
	BEMalformed      int64
	BEBufferOverruns int64
	BETruncated      int64 // frames abandoned at the router feeding a failed link

	BEFlitNacks       int64 // corrupted flits nacked upstream (Integrity)
	BEFlitRetransmits int64 // flits resent after a nack (Integrity)
	BEFrameAborts     int64 // frames abandoned after retry-budget exhaustion

	BusGrants int64
}

// Router is one real-time router chip. It implements sim.Component; wire
// its mesh links with ConnectIn/ConnectOut (or the mesh package) before
// running the kernel.
type Router struct {
	cfg   Config
	name  string
	wheel timing.Wheel

	in  [NumLinks]*InLink
	out [NumLinks]*OutLink

	table    []ConnEntry
	ctl      controlIface
	horizons [NumPorts]uint32

	mem    *packetMemory
	schedq sched.Scheduler
	bus    memBus

	tcIn  [NumPorts]*tcInput
	tcOut [NumPorts]*tcOutput
	beIn  [NumPorts]*beInput
	beOut [NumPorts]*beOutput

	// tcInjectQ is a head-indexed queue: popped entries advance tcInjHead
	// instead of reslicing, so the backing array is reused rather than
	// regrown in the injection hot path.
	tcInjectQ [][packet.TCBytes]byte
	tcInjHead int

	// Delivery queues are double-buffered: Drain returns the filled
	// buffer and installs the spare, so steady-state delivery never
	// allocates once both buffers have grown to the working set.
	tcDelivered  []DeliveredTC
	tcDrainSpare []DeliveredTC
	beDelivered  []DeliveredBE
	beDrainSpare []DeliveredBE

	// beFree recycles fully injected best-effort frames back to local
	// sources (BEFrameBuf), bounding frame allocation per packet.
	beFree [][]byte

	schedCountdown int
	schedRR        int
	nowCycle       int64

	// idle caches the quiescence summary computed at the end of every
	// full Tick: no buffered flits, empty packet memory, no pending
	// injections, no in-flight best-effort frames. While it holds (and
	// the link wires stay clear), Tick runs a fast path that replicates
	// only the idle cycle's observable effects — see tickIdle. Cleared
	// by injections and rewiring; idleTicks counts fast-path cycles.
	idle      bool
	idleTicks int64

	// blame is the slack-attribution bank (nil = forensics off); see
	// blame.go and EnableBlame.
	blame *blameBank

	// met is the attached telemetry block (nil = telemetry off); see
	// AttachMetrics. prevSlot/slotSeen detect slot-clock rollovers.
	met      *metrics.RouterMetrics
	prevSlot timing.Stamp
	slotSeen bool

	// Stats exposes the hardware counters; read-only for callers.
	Stats Stats
	// OnTCTransmit, if set, is invoked at the start of every
	// time-constrained packet transmission.
	OnTCTransmit func(TCTransmitEvent)
	// OnBETransmit, if set, is invoked for every best-effort flit sent.
	OnBETransmit func(port int, cycle int64)
	// OnLifecycle, if set, observes every packet-level lifecycle event
	// (inject, enqueue, arbitration win, transmit, cut-through, block,
	// drop, deliver); trace.AttachRouter installs the standard recorder.
	OnLifecycle func(LifecycleEvent)
	// OnReset, if set, is invoked by ResetStats so externally attached
	// state (trace rings) rotates together with the counters.
	OnReset func()
	// LinkFault, if set, intercepts every valid phit sampled from a mesh
	// input wire before the receive engines see it. The hook returns the
	// (possibly corrupted) phit to deliver, or ok=false to erase it
	// entirely (loss). Abort flits are never offered to the hook: they
	// are the recovery protocol itself. The hook runs inside this
	// router's tick, so per-link injector state needs no locking under
	// the parallel kernel. Value in, value out keeps the sampling loop
	// allocation-free. See internal/fault.
	LinkFault func(port int, ph packet.Phit) (out packet.Phit, ok bool)

	// schedSkip caches the scheduler's IdleSkipper view; non-nil is a
	// precondition for the quiescence fast-forward (Skip).
	schedSkip sched.IdleSkipper

	// beArena backs the payloads of delivered best-effort packets:
	// chunked bump allocation instead of one heap allocation per
	// delivery. Double-buffered in step with the beDelivered queues, so
	// payloads stay valid until the DrainBE call after next.
	beArena      beArena
	beArenaSpare beArena
}

// New constructs a router with the given configuration. The name appears
// in traces and panics (conventionally the mesh coordinate).
func New(name string, cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		name:     name,
		wheel:    mustWheel(cfg.ClockBits),
		table:    make([]ConnEntry, cfg.Conns),
		mem:      newPacketMemory(cfg.Slots),
		schedq:   cfg.newScheduler(),
		horizons: cfg.Horizons,
		beFree:   make([][]byte, 0, beFreeCap),
	}
	// The nack window scales with the link round trip: a corrupted flit
	// left 2·latency cycles before its nack reaches the sender, and at
	// one flit per cycle the history must cover that window plus slack.
	nackWin := 2 * cfg.linkLatency()
	for i := 0; i < NumPorts; i++ {
		r.tcIn[i] = &tcInput{r: r, id: i}
		r.tcOut[i] = &tcOutput{r: r, port: i}
		r.beIn[i] = &beInput{r: r, id: i, buf: make([]byte, 0, cfg.FlitBufBytes)}
		r.beOut[i] = &beOutput{
			r: r, port: i, curIn: -1, credits: cfg.FlitBufBytes,
			nackWin: nackWin, hist: make([]beHist, nackWin+2),
		}
	}
	r.schedSkip, _ = r.schedq.(sched.IdleSkipper)
	// Bus polling order mirrors the chip's ten port engines: five
	// receive engines then five transmit engines.
	for i := 0; i < NumPorts; i++ {
		r.bus.attach(r.tcIn[i])
	}
	for i := 0; i < NumPorts; i++ {
		r.bus.attach(r.tcOut[i])
	}
	return r, nil
}

func mustWheel(bits uint) timing.Wheel {
	w, err := timing.NewWheel(bits)
	if err != nil {
		panic(err)
	}
	return w
}

// MustNew is New for known-good configurations.
func MustNew(name string, cfg Config) *Router {
	r, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements sim.Component.
func (r *Router) Name() string { return r.name }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// Wheel returns the router's slot-clock wheel.
func (r *Router) Wheel() timing.Wheel { return r.wheel }

// Scheduler exposes the link scheduler for inspection in tests.
func (r *Router) Scheduler() sched.Scheduler { return r.schedq }

// FreeSlots returns the current idle-address FIFO depth.
func (r *Router) FreeSlots() int { return r.mem.freeSlots() }

// PortState summarizes one output port's pipeline for diagnostics.
type PortState struct {
	TxActive  bool
	Staged    bool
	Fetching  bool
	CandValid bool
	Cutting   bool
	CutIdx    int
}

// OutputState reports the transmit pipeline state of a port.
func (r *Router) OutputState(p int) PortState {
	o := r.tcOut[p]
	return PortState{
		TxActive:  o.txActive,
		Staged:    o.staged,
		Fetching:  o.fetching,
		CandValid: o.candValid,
		Cutting:   o.cutIn != nil,
		CutIdx:    o.cutIdx,
	}
}

// ResetStats zeroes the hardware counters — the standard simulator
// warmup idiom: run to steady state, reset, then measure. Attached
// telemetry resets with them (the metrics block, any scheduler
// counters, and — via OnReset — externally attached recorders such as
// trace rings), so warmup exclusion is consistent across every
// observation channel.
func (r *Router) ResetStats() {
	r.Stats = Stats{}
	r.bus.grants = 0
	r.resetBlame()
	r.met.Reset()
	if sr, ok := r.schedq.(interface{ ResetTelemetry() }); ok {
		sr.ResetTelemetry()
	}
	if r.OnReset != nil {
		r.OnReset()
	}
}

// ConnectIn attaches the receive side of a mesh link to input port p.
func (r *Router) ConnectIn(p int, l *InLink) {
	if p < 0 || p >= NumLinks {
		panic(fmt.Sprintf("router %s: ConnectIn(%d) out of link range", r.name, p))
	}
	r.in[p] = l
	r.idle = false
}

// ConnectOut attaches the transmit side of a mesh link to output port p.
func (r *Router) ConnectOut(p int, l *OutLink) {
	if p < 0 || p >= NumLinks {
		panic(fmt.Sprintf("router %s: ConnectOut(%d) out of link range", r.name, p))
	}
	r.out[p] = l
	r.idle = false
}

// InjectTC queues one time-constrained packet at the injection port. The
// header stamp must carry the connection's logical arrival time ℓ0(m) on
// the network slot clock.
func (r *Router) InjectTC(p packet.TCPacket) {
	r.idle = false
	if r.tcInjHead > 0 && len(r.tcInjectQ) == cap(r.tcInjectQ) {
		// Reclaim the consumed head space instead of growing.
		n := copy(r.tcInjectQ, r.tcInjectQ[r.tcInjHead:])
		r.tcInjectQ = r.tcInjectQ[:n]
		r.tcInjHead = 0
	}
	r.tcInjectQ = append(r.tcInjectQ, packet.EncodeTC(p))
	if r.met != nil {
		r.met.TCInjected.Inc()
	}
	if r.OnLifecycle != nil {
		l := r.wheel.Wrap(timing.Slot(p.Stamp))
		r.lifecycle(LifecycleEvent{
			Kind: EvInject, Port: -1, InConn: p.Conn,
			Stamp: l, Slack: r.wheel.SignedDiff(l, r.slotNow(r.nowCycle)),
		})
	}
}

// InjectBE queues one encoded best-effort packet (see packet.NewBE) at
// the injection port.
func (r *Router) InjectBE(frame []byte) {
	if len(frame) < packet.BEHeaderBytes {
		panic(fmt.Sprintf("router %s: InjectBE frame of %d bytes", r.name, len(frame)))
	}
	r.idle = false
	r.beIn[PortLocal].inject(frame)
}

// BEFrameBuf returns a zero-length recycled frame buffer (or nil when
// none is pooled) for use with packet.AppendBE. The router takes frames
// back after they fully cross the injection port, so a steady-state
// source alternates between a handful of buffers instead of allocating
// one per packet.
func (r *Router) BEFrameBuf() []byte {
	if n := len(r.beFree); n > 0 {
		b := r.beFree[n-1]
		r.beFree[n-1] = nil
		r.beFree = r.beFree[:n-1]
		return b[:0]
	}
	return nil
}

// beFreeCap bounds the recycled-frame pool; sources queue at most a few
// frames ahead of the injection port.
const beFreeCap = 8

func (r *Router) recycleBEFrame(frame []byte) {
	if len(r.beFree) < beFreeCap {
		r.beFree = append(r.beFree, frame)
	}
}

// BEInjectBacklog returns the number of best-effort frames queued
// behind the injection port, including the frame currently streaming
// across it. Sources use it to hold injection when the port is
// congested, which keeps the set of frame buffers in circulation
// bounded (and the BEFrameBuf pool warm).
func (r *Router) BEInjectBacklog() int {
	u := r.beIn[PortLocal]
	return len(u.injQ) - u.injHead
}

// TCInjectBacklog returns the number of packets queued at the
// time-constrained injection port.
func (r *Router) TCInjectBacklog() int {
	n := len(r.tcInjectQ) - r.tcInjHead
	if r.tcIn[PortLocal].injCount > 0 {
		n++
	}
	return n
}

// DrainTC returns and clears the packets delivered to the local
// processor since the last call. The returned slice is reused by the
// call after next — iterate or copy it before draining again.
func (r *Router) DrainTC() []DeliveredTC {
	d := r.tcDelivered
	r.tcDelivered = r.tcDrainSpare[:0]
	r.tcDrainSpare = d
	return d
}

// DrainBE returns and clears the best-effort deliveries. The returned
// slice — including the per-delivery Payload buffers, which live in a
// recycled arena — is reused by the call after next; iterate or copy
// before draining again.
func (r *Router) DrainBE() []DeliveredBE {
	d := r.beDelivered
	r.beDelivered = r.beDrainSpare[:0]
	r.beDrainSpare = d
	// The spare arena holds payloads from two drains ago (out of
	// contract); recycle it for the deliveries now starting to accrue.
	r.beArenaSpare.reset()
	r.beArena, r.beArenaSpare = r.beArenaSpare, r.beArena
	return d
}

// slotNow maps a cycle to this router's wrapped slot clock — global
// time plus the configured skew. The clock ticks once per packet
// transmission time (Section 4.2).
func (r *Router) slotNow(now int64) timing.Stamp {
	local := now + r.cfg.SkewCycles
	if local < 0 {
		local = 0
	}
	return r.wheel.Wrap(timing.CyclesToSlot(local, packet.TCBytes))
}

// SlotNow exposes the current slot stamp for traffic sources, which need
// the same clock the routers use (the bounded-skew assumption of
// Section 4.1: here skew is exactly zero).
func (r *Router) SlotNow(now int64) timing.Stamp { return r.slotNow(now) }

// Tick implements sim.Component. Phase order inside the chip:
//
//  1. output arbitration drives this cycle's phits from last cycle's
//     state (giving each hop its pipeline latency),
//  2. a comparator-tree beat refreshes one port's candidate,
//  3. fetch/write launches and one memory-bus chunk transfer,
//  4. inputs sample the link wires, and
//  5. acknowledgements return flit credits upstream.
func (r *Router) Tick(now sim.Cycle) {
	nowSlot := r.slotNow(int64(now))
	if r.idle && r.inputsClear(int64(now)) {
		r.tickIdle(int64(now), nowSlot)
		return
	}
	r.nowCycle = int64(now)

	// The wrapped slot clock only moves forward, so a numerically
	// smaller stamp than last cycle's means the register rolled over.
	if nowSlot < r.prevSlot && r.slotSeen && r.met != nil {
		r.met.SlotRollovers.Inc()
	}
	r.prevSlot, r.slotSeen = nowSlot, true

	for p := 0; p < NumPorts; p++ {
		r.arbitrate(p, nowSlot)
	}

	r.schedCountdown--
	if r.schedCountdown <= 0 {
		// Leaf sharing (§5.1) serializes each module's packets through
		// one comparator: selections come LeafSharing times slower.
		r.schedCountdown = r.cfg.SchedPeriod * r.cfg.LeafSharing
		r.schedBeat(nowSlot)
	}

	for p := 0; p < NumPorts; p++ {
		r.tcIn[p].launchWrite()
		r.tcOut[p].launchFetch()
	}
	r.bus.tick()
	r.Stats.BusGrants = r.bus.grants

	r.sampleInputs()

	for p := 0; p < NumLinks; p++ {
		if r.in[p] == nil {
			continue
		}
		u := r.beIn[p]
		var a packet.Ack
		if u.consumed > 0 {
			a.BECredit = true
			u.consumed--
			if r.met != nil {
				r.met.BEFlitAcks.Inc()
			}
		}
		if u.nackPending {
			a.BENack = true
			u.nackPending = false
		}
		if a.BECredit || a.BENack {
			r.in[p].DriveAck(r.nowCycle, a)
		}
	}

	r.idle = r.quiescent()
}

// tickIdle is the quiescent cycle. With every engine empty and the link
// wires clear, a full Tick reduces to exactly three observable effects:
// the slot-clock rollover detection, the schedule countdown, and — on a
// beat — the comparator-tree selection, which on an empty scheduler only
// advances the round-robin pointer and the scheduler telemetry
// (schedBeat is called unchanged, so any Select-side accounting stays
// identical). Everything else in the pipeline provably does not change
// state, so the fast path skips it.
func (r *Router) tickIdle(now int64, nowSlot timing.Stamp) {
	r.nowCycle = now
	if nowSlot < r.prevSlot && r.slotSeen && r.met != nil {
		r.met.SlotRollovers.Inc()
	}
	r.prevSlot, r.slotSeen = nowSlot, true
	r.schedCountdown--
	if r.schedCountdown <= 0 {
		r.schedCountdown = r.cfg.SchedPeriod * r.cfg.LeafSharing
		r.schedBeat(nowSlot)
	}
	r.idleTicks++
}

// inputsClear reports that nothing arrived on the link wires this
// cycle: no valid phit to sample and no returning best-effort credit.
// Together with the cached quiescence summary this licenses tickIdle.
func (r *Router) inputsClear(now int64) bool {
	for p := 0; p < NumLinks; p++ {
		if r.in[p] != nil && r.in[p].Phit(now).Valid {
			return false
		}
		if r.out[p] != nil {
			if a := r.out[p].Ack(now); a.BECredit || a.BENack {
				return false
			}
		}
	}
	return true
}

// quiescent computes the idle summary after a full Tick: every receive
// and transmit engine empty, both injection queues drained, the packet
// memory fully free, and no scheduling leaves installed. While it holds,
// the next Tick can take the fast path (provided the wires stay clear).
func (r *Router) quiescent() bool {
	if r.tcInjHead != len(r.tcInjectQ) ||
		r.mem.freeSlots() != r.cfg.Slots ||
		r.schedq.Occupancy() != 0 {
		return false
	}
	for p := 0; p < NumPorts; p++ {
		ti := r.tcIn[p]
		if ti.nAsm != 0 || ti.nPending != 0 || ti.wActive || ti.injCount != 0 ||
			ti.cutting || ti.cutHead != len(ti.cutFIFO) {
			return false
		}
		to := r.tcOut[p]
		if to.txActive || to.staged || to.fetching || to.candValid || to.cutIn != nil {
			return false
		}
		bi := r.beIn[p]
		if bi.parsed || bi.occ() != 0 || bi.consumed != 0 || bi.injHead != len(bi.injQ) ||
			bi.discard || bi.nackPending {
			return false
		}
		bo := r.beOut[p]
		if bo.curIn >= 0 || bo.wasStalled || bo.abortPending || bo.replayHead != len(bo.replay) {
			return false
		}
	}
	return true
}

// IdleTicks reports how many cycles this router has executed through
// the quiescence fast path — a diagnostic for tests and benchmarks, not
// a hardware counter.
func (r *Router) IdleTicks() int64 { return r.idleTicks }

// NextWork implements sim.Skipper. While the router is quiescent and
// its scheduler supports closed-form idle accounting, every future idle
// cycle's observable effects can be replayed in O(1), so the kernel may
// fast-forward arbitrarily far — arriving wire traffic is tracked
// separately, by the link pipes' stamps. A busy router, or one whose
// scheduler lacks SkipIdleSelects, must tick every cycle.
func (r *Router) NextWork(now sim.Cycle) sim.Cycle {
	if !r.idle || r.schedSkip == nil {
		return now
	}
	return sim.Never
}

// Skip implements sim.Skipper: replay the idle ticks for cycles
// [now, target) in closed form, bit-identical to running tickIdle
// target−now times. The replayed effects are exactly tickIdle's: slot
// rollover telemetry, the scheduler countdown with its empty-tree
// selection beats (round-robin pointer, Select-side accounting, the
// occupancy gauge), and the idle-cycle counter.
func (r *Router) Skip(now, target sim.Cycle) {
	n := int64(target - now)
	if n <= 0 {
		return
	}
	last := int64(target) - 1

	// Slot-clock rollovers: the wrapped stamp decreases exactly when the
	// monotone slot count crosses a multiple of the wheel range. Idleness
	// implies a prior full Tick, so slotSeen holds and prevSlot covers
	// cycle now−1.
	if r.met != nil {
		rng := int64(r.wheel.Range())
		if roll := r.unwrappedSlot(last)/rng - r.unwrappedSlot(int64(now)-1)/rng; roll > 0 {
			r.met.SlotRollovers.Add(roll)
		}
	}
	r.prevSlot, r.slotSeen = r.slotNow(last), true

	// Scheduler beats: the countdown decrements every cycle and fires a
	// beat at zero. On a quiescent router a beat advances the round-robin
	// pointer, runs one empty selection, and refreshes the occupancy
	// gauge (idempotent at zero occupancy) — all replayed in closed form.
	// A prior Tick guarantees schedCountdown ∈ [1, period].
	period := int64(r.cfg.SchedPeriod * r.cfg.LeafSharing)
	if c0 := int64(r.schedCountdown); n >= c0 {
		beats := 1 + (n-c0)/period
		rem := n - (c0 + (beats-1)*period)
		r.schedCountdown = int(period - rem)
		r.schedRR = (r.schedRR%NumPorts+int((beats-1)%int64(NumPorts)))%NumPorts + 1
		r.schedSkip.SkipIdleSelects(beats)
		if r.met != nil {
			r.met.SchedSelects.Add(beats)
			r.noteSchedOccupancy()
		}
	} else {
		r.schedCountdown = int(c0 - n)
	}

	r.idleTicks += n
	r.nowCycle = last
}

// unwrappedSlot is slotNow before wrapping: the monotone slot count
// used to tally rollovers across a skipped span.
func (r *Router) unwrappedSlot(now int64) int64 {
	local := now + r.cfg.SkewCycles
	if local < 0 {
		local = 0
	}
	return int64(timing.CyclesToSlot(local, packet.TCBytes))
}

// HasDeliveries reports whether any delivered packets await DrainTC or
// DrainBE, letting sinks skip the drain entirely on idle cycles.
func (r *Router) HasDeliveries() bool {
	return len(r.tcDelivered) > 0 || len(r.beDelivered) > 0
}

// schedBeat runs one comparator-tree selection for the next port in
// round-robin order, modelling the shared, pipelined tree's throughput
// of one result per SchedPeriod cycles.
func (r *Router) schedBeat(nowSlot timing.Stamp) {
	for i := 0; i < NumPorts; i++ {
		p := (r.schedRR + i) % NumPorts
		o := r.tcOut[p]
		if o.cutIn != nil || o.fetching || (o.txActive && o.staged) {
			continue
		}
		r.schedRR = p + 1
		o.schedule(nowSlot)
		if r.met != nil {
			r.met.SchedSelects.Inc()
			r.noteSchedOccupancy()
		}
		return
	}
}

// arbitrate resolves one output port for one cycle: continue an active
// time-constrained burst; else start an on-time packet; else send a
// best-effort flit; else start an early packet within the horizon
// (Table 1 service order with byte-level preemption of best-effort
// traffic).
func (r *Router) arbitrate(p int, nowSlot timing.Stamp) {
	o := r.tcOut[p]
	if p != PortLocal && r.out[p] == nil {
		r.drainDeadPort(o)
		r.beOut[p].drainDeadBE()
		r.beIn[p].drainDropped()
		if r.blame != nil {
			r.blameClose(p)
		}
		return
	}
	r.beIn[p].drainDropped()

	if o.txActive {
		r.emitTC(o)
		if r.blame != nil {
			r.blameArbWin(p, nowSlot, o.txConn)
		}
		return
	}
	if o.cutIn != nil && o.cutIdx > 0 {
		cutConn := o.cutLeaf.InConn
		if r.emitCut(o) {
			if r.blame != nil {
				r.blameArbWin(p, nowSlot, cutConn)
			}
		} else if r.blame != nil {
			// Cut-through bubble: the arrival stream has not caught up
			// with the rewritten header, so the wire itself is the
			// bottleneck.
			r.blameNoteTC(p, cutConn, CauseLinkBusy, 0)
		}
		return
	}

	class := sched.ClassNone
	if o.staged {
		class = o.stagedClass(nowSlot)
	}
	cutClass := sched.ClassNone
	if o.cutIn != nil {
		cutClass = o.cutClass
		if cutClass == sched.ClassEarly && r.wheel.OnTime(o.cutLeaf.L, nowSlot) {
			cutClass = sched.ClassOnTime
			o.cutClass = cutClass
		}
	}
	be := r.beOut[p]

	switch {
	case class == sched.ClassOnTime:
		o.startTx(nowSlot, class)
		r.emitTC(o)
		if r.blame != nil {
			r.blameArbWin(p, nowSlot, o.txConn)
		}
	case cutClass == sched.ClassOnTime:
		cutConn := o.cutLeaf.InConn
		r.emitCut(o)
		if r.blame != nil {
			r.blameArbWin(p, nowSlot, cutConn)
		}
	case be.hasFaultWork():
		be.sendFaultFlit()
		be.wasStalled = false
		if r.blame != nil {
			r.blameIdle(p, nowSlot, beSentFault)
		}
	case be.canSend():
		be.sendByte()
		be.wasStalled = false
		if r.blame != nil {
			r.blameIdle(p, nowSlot, beSentData)
		}
	case class == sched.ClassEarly:
		o.startTx(nowSlot, class)
		r.emitTC(o)
		if r.blame != nil {
			r.blameArbWin(p, nowSlot, o.txConn)
		}
	case cutClass == sched.ClassEarly:
		cutConn := o.cutLeaf.InConn
		r.emitCut(o)
		if r.blame != nil {
			r.blameArbWin(p, nowSlot, cutConn)
		}
	default:
		// The port idles this cycle. If a best-effort flit is waiting
		// but the downstream buffer owes no credit, that is a
		// backpressure stall worth counting (and tracing once per
		// episode): the link is free, the flit is not.
		if stalled := be.stalled(); stalled {
			if r.met != nil {
				r.met.BEStallCycles[p].Inc()
			}
			if !be.wasStalled && r.OnLifecycle != nil {
				r.lifecycle(LifecycleEvent{Kind: EvBlock, Port: p, BE: true})
			}
			be.wasStalled = true
			if r.blame != nil {
				r.blameNoteBE(p)
			}
		} else {
			be.wasStalled = false
		}
		if r.blame != nil {
			r.blameIdle(p, nowSlot, beSentNone)
		}
	}
}

// drainDeadPort discards time-constrained packets scheduled to a port
// with no attached link (a misconfiguration admission prevents).
func (r *Router) drainDeadPort(o *tcOutput) {
	if !o.staged {
		return
	}
	empty, err := r.schedq.ClearPort(o.sSlot, o.port)
	if err == nil && empty {
		r.mem.free(o.sSlot)
		r.noteMemOccupancy()
	}
	o.staged = false
	r.Stats.TCDeadPortDrops++
	r.dropTC(metrics.DropTCDeadPort, o.sLeaf.InConn, o.port)
}

// emitTC sends the next byte of the active transmission.
func (r *Router) emitTC(o *tcOutput) {
	b, head, tail := o.emitByte()
	if o.port == PortLocal {
		o.rxBuf[o.txIdx-1] = b
		if tail {
			r.deliverLocalTC(o.rxBuf)
		}
		return
	}
	ph := packet.Phit{Valid: true, VC: packet.VCTime, Data: b, Head: head, Tail: tail}
	if tail && r.cfg.Integrity {
		// The frame checksum rides the tail phit's sideband.
		ph.SideValid = true
		ph.Side = o.txCRC
	}
	r.out[o.port].Drive(r.nowCycle, ph)
}

// emitCut sends the next byte of a virtual cut-through stream; header
// bytes come rewritten, payload bytes from the input's skew FIFO. It
// reports whether a byte actually went out (false on a skew bubble).
func (r *Router) emitCut(o *tcOutput) bool {
	var b byte
	if o.cutIdx < packet.TCHeaderBytes {
		b = o.cutHdr[o.cutIdx]
	} else {
		u := o.cutIn
		if u.cutHead == len(u.cutFIFO) {
			return false // bubble: arrival stream has not caught up
		}
		b = u.cutFIFO[u.cutHead]
		u.cutHead++
		if u.cutHead == len(u.cutFIFO) {
			u.cutFIFO = u.cutFIFO[:0]
			u.cutHead = 0
		}
	}
	head := o.cutIdx == 0
	if head {
		r.Stats.TCTransmitted[o.port]++
		if r.met != nil {
			r.met.ArbWins[o.port][arbClass(o.cutClass)].Inc()
		}
		if r.OnTCTransmit != nil {
			r.OnTCTransmit(TCTransmitEvent{
				Router: r.name, Port: o.port,
				InConn: o.cutLeaf.InConn, OutConn: o.cutLeaf.OutConn,
				Class: o.cutClass, Cycle: r.nowCycle,
			})
		}
		if r.OnLifecycle != nil {
			ev := LifecycleEvent{
				Port: o.port, InConn: o.cutLeaf.InConn, OutConn: o.cutLeaf.OutConn,
				Class: o.cutClass,
				Stamp: o.cutLeaf.Dl,
				Slack: r.wheel.SignedDiff(o.cutLeaf.Dl, r.slotNow(r.nowCycle)),
			}
			ev.Kind = EvArbWin
			r.lifecycle(ev)
			ev.Kind = EvTransmit
			r.lifecycle(ev)
		}
	}
	tail := o.cutIdx == packet.TCBytes-1
	if o.port == PortLocal {
		o.rxBuf[o.cutIdx] = b
		o.cutIdx++
		if tail {
			r.deliverLocalTC(o.rxBuf)
			o.cutIn = nil
		}
		return true
	}
	o.cutIdx++
	r.out[o.port].Drive(r.nowCycle, packet.Phit{Valid: true, VC: packet.VCTime, Data: b, Head: head, Tail: tail})
	if tail {
		o.cutIn = nil
	}
	return true
}

func (r *Router) deliverLocalTC(buf [packet.TCBytes]byte) {
	p := packet.DecodeTC(buf)
	r.tcDelivered = append(r.tcDelivered, DeliveredTC{
		Conn: p.Conn, Stamp: p.Stamp, Payload: p.Payload, Cycle: r.nowCycle,
	})
	r.Stats.TCDelivered++
	if r.met != nil {
		r.met.TCDelivered.Inc()
	}
	if r.OnLifecycle != nil {
		// The last hop rewrote the header stamp to the delivery deadline
		// (busGrant writes StampOf(Dl)), so the slack here is the packet's
		// end-to-end margin against its reserved bound.
		dl := r.wheel.Wrap(timing.Slot(p.Stamp))
		r.lifecycle(LifecycleEvent{
			Kind: EvDeliver, Port: -1, InConn: p.Conn,
			Stamp: dl, Slack: r.wheel.SignedDiff(dl, r.slotNow(r.nowCycle)),
		})
	}
}

// sampleInputs reads the link wires and injection queues.
func (r *Router) sampleInputs() {
	for p := 0; p < NumLinks; p++ {
		if r.in[p] == nil {
			// A failed upstream link can never complete an in-progress
			// packet: flush the fragment so it releases its output.
			if u := r.beIn[p]; u.parsed || u.occ() > 0 || u.discard {
				u.truncate()
			}
			if tu := r.tcIn[p]; r.cfg.Integrity && tu.nAsm > 0 {
				tu.framingDrop()
				tu.resync = true
			}
		}
		if r.in[p] != nil {
			ph := r.in[p].Phit(r.nowCycle)
			if ph.Valid && r.LinkFault != nil && !ph.Abort {
				var ok bool
				if ph, ok = r.LinkFault(p, ph); !ok {
					ph = packet.Phit{}
				}
			}
			if tu := r.tcIn[p]; r.cfg.Integrity && tu.nAsm > 0 &&
				(!ph.Valid || ph.VC != packet.VCTime) {
				// Time-constrained frames are contiguous on the wire
				// (cut-through is off under Integrity), so any gap
				// mid-assembly means a phit was lost.
				tu.framingDrop()
				tu.resync = true
			}
			if ph.Valid {
				switch ph.VC {
				case packet.VCTime:
					r.tcIn[p].acceptWire(ph, r.nowCycle)
				case packet.VCBest:
					u := r.beIn[p]
					switch {
					case ph.Abort:
						u.abortRecv()
					case r.cfg.Integrity:
						u.acceptWireBE(ph)
					default:
						u.acceptByte(ph.Data)
					}
				}
			}
		}
		if r.out[p] != nil {
			a := r.out[p].Ack(r.nowCycle)
			if a.BECredit {
				be := r.beOut[p]
				if be.credits < r.cfg.FlitBufBytes {
					be.credits++
				}
			}
			if a.BENack {
				r.beOut[p].handleNack(r.nowCycle)
			}
		}
	}
	r.feedTCInjection()
	r.beIn[PortLocal].feedInjection()
	for p := 0; p < NumPorts; p++ {
		r.beIn[p].parse()
	}
}

// feedTCInjection streams queued time-constrained packets across the
// injection port at one byte per cycle.
func (r *Router) feedTCInjection() {
	u := r.tcIn[PortLocal]
	if u.injCount == 0 {
		if r.tcInjHead == len(r.tcInjectQ) {
			return
		}
		u.injPkt = r.tcInjectQ[r.tcInjHead]
		r.tcInjHead++
		if r.tcInjHead == len(r.tcInjectQ) {
			r.tcInjectQ = r.tcInjectQ[:0]
			r.tcInjHead = 0
		}
		u.injCount = packet.TCBytes
	}
	idx := packet.TCBytes - u.injCount
	u.acceptByte(u.injPkt[idx], r.nowCycle)
	u.injCount--
	if r.blame != nil && r.tcInjHead < len(r.tcInjectQ) {
		// A queued packet waits behind the one streaming across the
		// injection port: the local link is the bottleneck. Byte 0 of an
		// encoded packet is its connection id.
		r.blameNoteAt(-1, r.tcInjectQ[r.tcInjHead][0], false, CauseLinkBusy, u.injPkt[0])
	}
}
