package experiments

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// VCTResult is the X3 extension study: Section 7 of the paper proposes
// virtual cut-through switching for time-constrained traffic — an
// arriving packet proceeds directly to its output link if no other
// packet has a smaller sorting key. The study measures mean latency of
// a lightly loaded periodic channel across a line of routers with the
// extension off and on, and the fraction of hops that cut through.
type VCTResult struct {
	Hops        int
	MeanOff     float64
	MeanOn      float64
	Saving      float64 // cycles
	CutFraction float64 // cut-throughs per forwarding opportunity
	Misses      int64
}

// RunVCT measures the virtual cut-through latency improvement across a
// line of hops+1 routers.
func RunVCT(hops int, cycles int64) (*VCTResult, error) {
	if hops < 1 || hops > 7 || cycles <= 0 {
		return nil, fmt.Errorf("experiments: invalid VCT config (hops %d)", hops)
	}
	run := func(vct bool) (mean float64, cuts, transmits, misses int64, err error) {
		cfg := router.DefaultConfig()
		cfg.VCT = vct
		// A generous horizon lets early packets move at every hop,
		// matching Section 7's "proceed directly" condition.
		sys, err := core.NewMesh(hops+1, 1, core.Options{Router: cfg}.WithAdmission(admission.Config{
			Policy:       admission.Partitioned,
			SourceWindow: 8,
			Horizon:      32,
		}))
		if err != nil {
			return 0, 0, 0, 0, err
		}
		src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: hops, Y: 0}
		// Tight per-hop bounds (d = 5 slots) keep packets near their
		// logical arrival times, so latency is set by the forwarding
		// pipeline rather than by eligibility gating — the regime where
		// cut-through can pay off.
		spec := rtc.Spec{Imin: 16, Smax: packet.TCPayloadBytes, D: int64(5 * (hops + 1))}
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		app, err := traffic.NewTCApp("tc", ch.Paced(), spec, traffic.Periodic, packet.TCPayloadBytes)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		sys.Net.Kernel.Register(app)
		sys.Run(cycles)
		sum := sys.Summarize()
		for _, c := range sys.Net.Coords() {
			st := sys.Router(c).Stats
			cuts += st.TCCutThroughs
			for p := 0; p < router.NumPorts; p++ {
				transmits += st.TCTransmitted[p]
			}
		}
		return sum.TCLatency.Mean(), cuts, transmits, sum.TCMisses, nil
	}
	off, _, _, m1, err := run(false)
	if err != nil {
		return nil, err
	}
	on, cuts, transmits, m2, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &VCTResult{
		Hops:    hops,
		MeanOff: off,
		MeanOn:  on,
		Saving:  off - on,
		Misses:  m1 + m2,
	}
	// TCTransmitted counts cut and stored transmissions alike, so the
	// fraction is cuts over all forwarding events.
	if transmits > 0 {
		res.CutFraction = float64(cuts) / float64(transmits)
	}
	return res, nil
}

// VCTLoadResult extends the study with time-constrained cross-traffic:
// §7's cut condition is "no other packets have smaller sorting keys",
// so best-effort load never blocks a cut (on-time traffic preempts it
// anyway) — but competing TC channels do, reverting hops to
// store-and-forward. The sweep quantifies VCT as a light-TC-load
// optimization.
type VCTLoadResult struct {
	CrossChannels []int // competing channels through the middle link
	CutFraction   []float64
	TCMean        []float64
	Misses        int64
}

// RunVCTLoad sweeps TC cross-traffic on a 3-hop VCT line.
func RunVCTLoad(cross []int, cycles int64) (*VCTLoadResult, error) {
	if len(cross) == 0 || cycles <= 0 {
		return nil, fmt.Errorf("experiments: invalid VCT load sweep")
	}
	const hops = 3
	res := &VCTLoadResult{CrossChannels: cross}
	for _, n := range cross {
		if n < 0 || n > 6 {
			return nil, fmt.Errorf("experiments: cross-channel count %d out of [0,6]", n)
		}
		cfg := router.DefaultConfig()
		cfg.VCT = true
		sys, err := core.NewMesh(hops+1, 1, core.Options{Router: cfg}.WithAdmission(admission.Config{
			Policy:       admission.Partitioned,
			SourceWindow: 8,
			Horizon:      32,
		}))
		if err != nil {
			return nil, err
		}
		src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: hops, Y: 0}
		spec := rtc.Spec{Imin: 16, Smax: packet.TCPayloadBytes, D: int64(5 * (hops + 1))}
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			return nil, err
		}
		app, err := traffic.NewTCApp("tc", ch.Paced(), spec, traffic.Periodic, packet.TCPayloadBytes)
		if err != nil {
			return nil, err
		}
		sys.Net.Kernel.Register(app)
		// Competing channels share the (1,0)→(2,0) link segment.
		for i := 0; i < n; i++ {
			cspec := rtc.Spec{Imin: 8, Smax: packet.TCPayloadBytes, D: 32}
			cch, err := sys.OpenChannel(mesh.Coord{X: 1, Y: 0}, []mesh.Coord{{X: 2, Y: 0}}, cspec)
			if err != nil {
				return nil, fmt.Errorf("experiments: cross channel %d: %w", i, err)
			}
			capp, err := traffic.NewTCApp(fmt.Sprintf("cross%d", i), cch.Paced(), cspec,
				traffic.Backlogged, packet.TCPayloadBytes)
			if err != nil {
				return nil, err
			}
			sys.Net.Kernel.Register(capp)
		}
		sys.Run(cycles)
		sum := sys.Summarize()
		var cuts, transmits int64
		for _, c := range sys.Net.Coords() {
			st := sys.Router(c).Stats
			cuts += st.TCCutThroughs
			for p := 0; p < router.NumPorts; p++ {
				transmits += st.TCTransmitted[p]
			}
		}
		frac := 0.0
		if transmits > 0 {
			frac = float64(cuts) / float64(transmits)
		}
		res.CutFraction = append(res.CutFraction, frac)
		res.TCMean = append(res.TCMean, sum.TCLatency.Mean())
		res.Misses += sum.TCMisses
	}
	return res, nil
}

// Table renders the load sweep.
func (r *VCTLoadResult) Table() *Table {
	t := &Table{
		Title:  "X3b — virtual cut-through under time-constrained cross-traffic",
		Header: []string{"cross channels", "hops cut (%)", "TC mean (cyc, all channels)"},
	}
	for i, n := range r.CrossChannels {
		t.AddRow(di(n), f1(r.CutFraction[i]*100), f1(r.TCMean[i]))
	}
	t.AddNote("§7's cut condition defers only to other time-constrained packets, so best-effort load")
	t.AddNote("never blocks a cut; TC contention reverts hops to store-and-forward (misses: %d)", r.Misses)
	return t
}

// Table renders the study.
func (r *VCTResult) Table() *Table {
	t := &Table{
		Title:  "X3 — virtual cut-through for time-constrained traffic (paper §7 future work)",
		Header: []string{"hops", "store-and-forward (cyc)", "cut-through (cyc)", "saving (cyc)", "hops cut (%)"},
	}
	t.AddRow(di(r.Hops), f1(r.MeanOff), f1(r.MeanOn), f1(r.Saving), f1(r.CutFraction*100))
	t.AddNote("per cut hop the packet skips the 20-cycle store plus the memory/scheduler pipeline")
	t.AddNote("deadline misses across both runs: %d", r.Misses)
	return t
}
