package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Quantile(0.5) != 0 || h.StdDev() != 0 {
		t.Error("empty histogram not all-zero")
	}
	if h.String() != "n=0" {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	want := math.Sqrt(2)
	if d := math.Abs(h.StdDev() - want); d > 1e-12 {
		t.Errorf("StdDev = %v, want %v", h.StdDev(), want)
	}
}

func TestHistAddAfterQuantile(t *testing.T) {
	var h Hist
	h.AddInt(10)
	_ = h.Quantile(0.5)
	h.AddInt(1) // must re-sort
	if h.Min() != 1 {
		t.Errorf("Min after late add = %v", h.Min())
	}
}

func TestHistQuantileMonotoneQuick(t *testing.T) {
	prop := func(vals []float64, a, b float64) bool {
		var h Hist
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Add(v)
			}
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.At(100) != 0 {
		t.Error("empty series not zero")
	}
	s.Append(10, 1)
	s.Append(20, 5)
	s.Append(30, 9)
	if s.Len() != 3 || s.Last() != 9 {
		t.Errorf("Len/Last = %d/%v", s.Len(), s.Last())
	}
	cases := map[int64]float64{5: 0, 10: 1, 15: 1, 20: 5, 25: 5, 30: 9, 99: 9}
	for tt, want := range cases {
		if got := s.At(tt); got != want {
			t.Errorf("At(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.Inc(3)
	a.Inc(4)
	a.Sample(100)
	a.Inc(1)
	a.Sample(200)
	if a.Total() != 8 {
		t.Errorf("Total = %v", a.Total())
	}
	if a.At(100) != 7 || a.At(250) != 8 {
		t.Errorf("series wrong: %v %v", a.At(100), a.At(250))
	}
}

func TestRenderASCII(t *testing.T) {
	s1 := &Series{Name: "fast"}
	s2 := &Series{Name: "slow"}
	for i := int64(0); i < 100; i += 10 {
		s1.Append(i, float64(i)*2)
		s2.Append(i, float64(i))
	}
	out := RenderASCII(40, 10, s1, s2)
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("glyphs missing")
	}
	if RenderASCII(2, 1, s1) != "" {
		t.Error("degenerate dimensions should render nothing")
	}
	empty := &Series{Name: "e"}
	if got := RenderASCII(40, 10, empty); got != "(no data)\n" {
		t.Errorf("empty render = %q", got)
	}
}
