package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Quantile(0.5) != 0 || h.StdDev() != 0 {
		t.Error("empty histogram not all-zero")
	}
	if h.String() != "n=0" {
		t.Errorf("String = %q", h.String())
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	want := math.Sqrt(2)
	if d := math.Abs(h.StdDev() - want); d > 1e-12 {
		t.Errorf("StdDev = %v, want %v", h.StdDev(), want)
	}
}

func TestHistAddAfterQuantile(t *testing.T) {
	var h Hist
	h.AddInt(10)
	_ = h.Quantile(0.5)
	h.AddInt(1) // must re-sort
	if h.Min() != 1 {
		t.Errorf("Min after late add = %v", h.Min())
	}
}

func TestHistQuantileMonotoneQuick(t *testing.T) {
	prop := func(vals []float64, a, b float64) bool {
		var h Hist
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Add(v)
			}
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.At(100) != 0 {
		t.Error("empty series not zero")
	}
	s.Append(10, 1)
	s.Append(20, 5)
	s.Append(30, 9)
	if s.Len() != 3 || s.Last() != 9 {
		t.Errorf("Len/Last = %d/%v", s.Len(), s.Last())
	}
	cases := map[int64]float64{5: 0, 10: 1, 15: 1, 20: 5, 25: 5, 30: 9, 99: 9}
	for tt, want := range cases {
		if got := s.At(tt); got != want {
			t.Errorf("At(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.Inc(3)
	a.Inc(4)
	a.Sample(100)
	a.Inc(1)
	a.Sample(200)
	if a.Total() != 8 {
		t.Errorf("Total = %v", a.Total())
	}
	if a.At(100) != 7 || a.At(250) != 8 {
		t.Errorf("series wrong: %v %v", a.At(100), a.At(250))
	}
}

func TestRenderASCII(t *testing.T) {
	s1 := &Series{Name: "fast"}
	s2 := &Series{Name: "slow"}
	for i := int64(0); i < 100; i += 10 {
		s1.Append(i, float64(i)*2)
		s2.Append(i, float64(i))
	}
	out := RenderASCII(40, 10, s1, s2)
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("glyphs missing")
	}
	if RenderASCII(2, 1, s1) != "" {
		t.Error("degenerate dimensions should render nothing")
	}
	empty := &Series{Name: "e"}
	if got := RenderASCII(40, 10, empty); got != "(no data)\n" {
		t.Errorf("empty render = %q", got)
	}
}

func TestHistQuantileTinySamples(t *testing.T) {
	var h Hist
	h.Add(42)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("1-sample Quantile(%v) = %v, want 42", q, got)
		}
	}
	h.Add(10)
	// Nearest-rank on two sorted samples {10, 42}: anything at or below
	// the median picks the first, above it the second.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("2-sample Quantile(0.5) = %v, want 10", got)
	}
	if got := h.Quantile(0.51); got != 42 {
		t.Errorf("2-sample Quantile(0.51) = %v, want 42", got)
	}
	if h.Min() != 10 || h.Max() != 42 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistAddAfterSortedRead(t *testing.T) {
	var h Hist
	h.Add(5)
	h.Add(1)
	if h.Quantile(1) != 5 { // forces the sort
		t.Fatal("setup quantile wrong")
	}
	h.Add(3) // must invalidate the sorted view
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("median after post-sort Add = %v, want 3", got)
	}
	if h.Min() != 1 || h.Max() != 5 || h.Mean() != 3 {
		t.Errorf("stats after post-sort Add: min=%v max=%v mean=%v", h.Min(), h.Max(), h.Mean())
	}
}

func TestSeriesInsertOutOfOrder(t *testing.T) {
	var s Series
	s.Insert(100, 1)
	s.Insert(300, 3)
	s.Insert(200, 2) // late observation lands in the middle
	s.Insert(50, 0.5)
	wantT := []int64{50, 100, 200, 300}
	wantV := []float64{0.5, 1, 2, 3}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := range wantT {
		if s.T[i] != wantT[i] || s.V[i] != wantV[i] {
			t.Errorf("point %d = (%d, %v), want (%d, %v)", i, s.T[i], s.V[i], wantT[i], wantV[i])
		}
	}
	if s.At(250) != 2 || s.At(49) != 0 {
		t.Errorf("At after out-of-order insert: %v %v", s.At(250), s.At(49))
	}
	// Equal timestamps keep insertion order (stable on ties).
	s.Insert(300, 4)
	if s.V[s.Len()-1] != 4 {
		t.Errorf("tie did not append after existing point: %v", s.V)
	}
}

func TestTimeSeriesOutOfOrder(t *testing.T) {
	ts := NewTimeSeries()
	ts.Observe("misses", 200, 2)
	ts.Observe("misses", 100, 1)
	ts.Observe("occupancy", 50, 9)
	s := ts.Series("misses")
	if s == nil || s.Len() != 2 || s.T[0] != 100 || s.T[1] != 200 {
		t.Fatalf("misses series out of order: %+v", s)
	}
	if got := ts.Names(); len(got) != 2 || got[0] != "misses" || got[1] != "occupancy" {
		t.Errorf("Names = %v", got)
	}
	if ts.Series("absent") != nil {
		t.Error("unknown series should be nil")
	}
	ts.Reset()
	if len(ts.Names()) != 0 || ts.Series("misses") != nil {
		t.Error("Reset left series behind")
	}
	ts.Observe("misses", 5, 1)
	if ts.Series("misses").Len() != 1 {
		t.Error("Observe after Reset broken")
	}
}
