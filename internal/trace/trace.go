// Package trace records time-stamped network events into a bounded ring
// for post-mortem inspection — the software analog of watching the
// Verilog waveforms the authors used. Recorders attach to router hooks
// and sink observers; cmd/rtsim exposes the tail via -trace.
package trace

import (
	"fmt"
	"io"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/timing"
)

// Kind classifies an event.
type Kind int

const (
	// KindTCTransmit is a time-constrained packet leaving an output port.
	KindTCTransmit Kind = iota
	// KindTCDeliver is a delivery to a local processor.
	KindTCDeliver
	// KindBEDeliver is a best-effort delivery.
	KindBEDeliver
	// KindInject is a time-constrained packet handed to the injection
	// port by the local processor.
	KindInject
	// KindEnqueue is a packet becoming visible to the comparator tree
	// (memory write finished, scheduling leaf installed).
	KindEnqueue
	// KindArbWin is an output port selecting a packet for transmission.
	KindArbWin
	// KindCutThrough is a virtual cut-through path being established.
	KindCutThrough
	// KindBlock is an output port starting a best-effort credit stall.
	KindBlock
	// KindDrop is a packet being discarded (Reason says why).
	KindDrop
	// KindStall is a closed slack-attribution episode: Wait consecutive
	// cycles the victim (Conn) spent not advancing on the port for one
	// cause (Reason), ending exclusive at Cycle. Present only when blame
	// collection is enabled (router.EnableBlame).
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindTCTransmit:
		return "tc-tx"
	case KindTCDeliver:
		return "tc-rx"
	case KindBEDeliver:
		return "be-rx"
	case KindInject:
		return "inject"
	case KindEnqueue:
		return "enqueue"
	case KindArbWin:
		return "arb-win"
	case KindCutThrough:
		return "cut-thru"
	case KindBlock:
		return "block"
	case KindDrop:
		return "drop"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence. Conn is the connection id the
// packet carried arriving at the router; OutConn the rewritten id it
// leaves with (headers are rewritten every hop), zero when unknown.
type Event struct {
	Cycle   int64
	Kind    Kind
	Router  string
	Port    int
	Conn    uint8
	OutConn uint8
	Class   sched.Class
	Missed  bool
	Wait    int64
	// Stamp and Slack mirror router.LifecycleEvent: the wrapped deadline
	// stamp the event was measured against and the signed slot distance
	// to it (negative = overdue).
	Stamp  timing.Stamp
	Slack  int64
	Reason string
	BE     bool
}

// Ring is a fixed-capacity event recorder; the newest events win.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing returns a recorder keeping the last n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Record appends an event, evicting the oldest beyond capacity.
func (r *Ring) Record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Total returns how many events were recorded overall (including
// evicted ones).
func (r *Ring) Total() int64 { return r.total }

// Reset discards all retained events and the running total, keeping
// the capacity. Router.ResetStats invokes it through the OnReset chain
// installed by AttachRouter.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events, oldest first.
func (r *Ring) Dump(w io.Writer) {
	DumpEvents(w, r.Events())
}

// DumpEvents writes events in the standard human-readable trace format,
// one line each, in slice order. The slack printed on transmit,
// arbitration, cut-through, and delivery lines is the signed slot margin
// against the event's deadline stamp (negative = overdue).
func DumpEvents(w io.Writer, events []Event) {
	for _, e := range events {
		miss := ""
		if e.Missed {
			miss = " MISS"
		}
		switch e.Kind {
		case KindTCTransmit, KindArbWin:
			fmt.Fprintf(w, "%10d  %s  %s %s conn=%d->%d class=%s wait=%d slack=%d%s\n",
				e.Cycle, e.Kind, e.Router, router.PortName(e.Port), e.Conn, e.OutConn, e.Class, e.Wait, e.Slack, miss)
		case KindCutThrough:
			fmt.Fprintf(w, "%10d  %s  %s %s conn=%d->%d class=%s slack=%d\n",
				e.Cycle, e.Kind, e.Router, router.PortName(e.Port), e.Conn, e.OutConn, e.Class, e.Slack)
		case KindEnqueue:
			fmt.Fprintf(w, "%10d  %s  %s conn=%d->%d\n", e.Cycle, e.Kind, e.Router, e.Conn, e.OutConn)
		case KindDrop:
			fmt.Fprintf(w, "%10d  %s  %s conn=%d reason=%s\n", e.Cycle, e.Kind, e.Router, e.Conn, e.Reason)
		case KindStall:
			fmt.Fprintf(w, "%10d  %s  %s %s conn=%d cause=%s blamed=%d cycles=%d\n",
				e.Cycle, e.Kind, e.Router, router.PortName(e.Port), e.Conn, e.Reason, e.OutConn, e.Wait)
		case KindBlock:
			fmt.Fprintf(w, "%10d  %s  %s %s\n", e.Cycle, e.Kind, e.Router, router.PortName(e.Port))
		case KindTCDeliver:
			fmt.Fprintf(w, "%10d  %s  %s conn=%d slack=%d%s\n", e.Cycle, e.Kind, e.Router, e.Conn, e.Slack, miss)
		default:
			fmt.Fprintf(w, "%10d  %s  %s conn=%d%s\n", e.Cycle, e.Kind, e.Router, e.Conn, miss)
		}
	}
}

// FromLifecycle translates a router observation into a trace event. The
// obs package reuses it so sharded collectors and the legacy ring render
// identically.
func FromLifecycle(ev router.LifecycleEvent) Event {
	e := Event{
		Cycle:   ev.Cycle,
		Router:  ev.Router,
		Port:    ev.Port,
		Conn:    ev.InConn,
		OutConn: ev.OutConn,
		Class:   ev.Class,
		Missed:  ev.Missed,
		Wait:    ev.Wait,
		Stamp:   ev.Stamp,
		Slack:   ev.Slack,
		BE:      ev.BE,
	}
	switch ev.Kind {
	case router.EvInject:
		e.Kind = KindInject
	case router.EvEnqueue:
		e.Kind = KindEnqueue
	case router.EvArbWin:
		e.Kind = KindArbWin
	case router.EvTransmit:
		e.Kind = KindTCTransmit
	case router.EvCutThrough:
		e.Kind = KindCutThrough
	case router.EvBlock:
		e.Kind = KindBlock
	case router.EvDrop:
		e.Kind = KindDrop
		e.Reason = ev.Reason.String()
	case router.EvDeliver:
		if ev.BE {
			e.Kind = KindBEDeliver
		} else {
			e.Kind = KindTCDeliver
		}
	case router.EvStall:
		e.Kind = KindStall
		e.Reason = ev.Cause.String()
	}
	return e
}

// AttachRouter hooks the router's full packet lifecycle — inject,
// enqueue, arbitration wins, transmits, cut-throughs, best-effort
// blocks, drops, and deliveries — into the ring. It chains with any
// lifecycle hook already installed, and chains the router's OnReset so
// Router.ResetStats also clears the ring.
func AttachRouter(ring *Ring, r *router.Router) {
	prev := r.OnLifecycle
	r.OnLifecycle = func(ev router.LifecycleEvent) {
		ring.Record(FromLifecycle(ev))
		if prev != nil {
			prev(ev)
		}
	}
	prevReset := r.OnReset
	r.OnReset = func() {
		ring.Reset()
		if prevReset != nil {
			prevReset()
		}
	}
}

// Timeline reconstructs the per-hop history of the connection: the
// chain of logical arrivals (ℓ_j in the paper) from injection at the
// source through every hop's enqueue/arbitration/transmit to delivery.
// Because headers are rewritten at each hop, the walk follows the
// connection-id chain: an event transmitting conn a as conn b extends
// the set of ids considered part of the flow. conn id 0 is treated as
// "unknown" and never followed. If unrelated connections reuse an id
// retained in the ring their events merge into the result; keep rings
// short-lived (or Reset between phases) when ids are recycled.
func Timeline(ring *Ring, conn uint8) []Event {
	live := map[uint8]bool{conn: true}
	var out []Event
	for _, e := range ring.Events() {
		if e.BE || !live[e.Conn] {
			continue
		}
		out = append(out, e)
		switch e.Kind {
		case KindEnqueue, KindTCTransmit, KindCutThrough, KindArbWin:
			if e.OutConn != 0 {
				live[e.OutConn] = true
			}
		}
	}
	return out
}

// AttachDeliveries hooks a node's delivery events into the ring via its
// sink observers. The at label names the node.
//
// Deprecated-in-spirit: AttachRouter now records deliveries through the
// lifecycle hook, so attaching both double-counts. The observer remains
// for callers that want delivery events only.
type DeliveryObserver struct {
	ring *Ring
	at   mesh.Coord
}

// NewDeliveryObserver returns observer callbacks for traffic.Sink.OnTC
// and OnBE.
func NewDeliveryObserver(ring *Ring, at mesh.Coord) *DeliveryObserver {
	return &DeliveryObserver{ring: ring, at: at}
}

// TC records a time-constrained delivery.
func (o *DeliveryObserver) TC(d router.DeliveredTC) {
	o.ring.Record(Event{Cycle: d.Cycle, Kind: KindTCDeliver, Router: o.at.String(), Conn: d.Conn})
}

// BE records a best-effort delivery.
func (o *DeliveryObserver) BE(d router.DeliveredBE) {
	o.ring.Record(Event{Cycle: d.Cycle, Kind: KindBEDeliver, Router: o.at.String(), BE: true})
}
