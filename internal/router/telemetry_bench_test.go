package router

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/timing"
)

// benchmarkTick drives one router under a steady self-delivery load,
// with or without a telemetry block attached, so the two benchmarks
// bound the cost of the hot-path instrumentation. The no-metrics run
// pays only the nil checks; the attached run pays the atomic updates.
// Measured on the development machine the difference stays under 5%.
func benchmarkTick(b *testing.B, withMetrics bool) {
	k := sim.NewKernel()
	r := MustNew("bench", DefaultConfig())
	k.Register(r)
	if err := r.SetConnection(9, 9, 8, 1<<PortLocal); err != nil {
		b.Fatal(err)
	}
	if withMetrics {
		reg := metrics.NewRegistry()
		r.AttachMetrics(reg.Router("bench"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			now := timing.CyclesToSlot(int64(i), packet.TCBytes)
			r.InjectTC(packet.TCPacket{Conn: 9, Stamp: packet.StampOf(timing.Stamp(now + 8))})
		}
		k.Run(1)
		if i%4096 == 0 {
			r.DrainTC()
		}
	}
}

func BenchmarkTick(b *testing.B)            { benchmarkTick(b, false) }
func BenchmarkTickWithMetrics(b *testing.B) { benchmarkTick(b, true) }
