package router

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// newBenchPair wires two routers A↔B over one bidirectional channel,
// the minimal fixture that exercises real link traversal.
func newBenchPair(b *testing.B) (*sim.Kernel, *Router, *Router) {
	b.Helper()
	k := sim.NewKernel()
	ra := MustNew("A", DefaultConfig())
	rb := MustNew("B", DefaultConfig())
	k.Register(ra)
	k.Register(rb)
	ab := NewChannel(k)
	ra.ConnectOut(PortXPlus, ab.Out())
	rb.ConnectIn(PortXMinus, ab.In())
	ba := NewChannel(k)
	rb.ConnectOut(PortXMinus, ba.Out())
	ra.ConnectIn(PortXPlus, ba.In())
	return k, ra, rb
}

// BenchmarkRouterTick measures the router's per-cycle cost on the three
// hot paths the simulator spends its time in: the quiescent fast path,
// saturated time-constrained forwarding, and best-effort wormhole
// traffic contending in both directions. One iteration is one simulated
// cycle, so ns/op reads directly as ns/cycle and allocs/op as
// allocs/cycle (the steady-state figure TestSteadyStateAllocs gates at
// the mesh level).
func BenchmarkRouterTick(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		k := sim.NewKernel()
		r := MustNew("A", DefaultConfig())
		k.Register(r)
		k.Run(16) // settle into the quiescent fast path
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Step()
		}
		if r.Stats.TCDelivered != 0 {
			b.Fatal("idle benchmark delivered packets")
		}
	})

	b.Run("tc_forward", func(b *testing.B) {
		k, ra, rb := newBenchPair(b)
		if err := ra.SetConnection(1, 2, 5, 1<<PortXPlus); err != nil {
			b.Fatal(err)
		}
		if err := rb.SetConnection(2, 7, 5, 1<<PortLocal); err != nil {
			b.Fatal(err)
		}
		pkt := packet.TCPacket{Conn: 1}
		step := func(cycle int) {
			// One packet per slot keeps the scheduler, the shared memory,
			// and the transmit engines busy every single cycle.
			if cycle%packet.TCBytes == 0 && ra.FreeSlots() > 0 {
				ra.InjectTC(pkt)
			}
			k.Step()
			rb.DrainTC()
		}
		// Warm-up must outlast the connection's scheduling delay (d=5
		// slots at each hop) so deliveries are already flowing when the
		// measured window starts.
		for c := 0; c < 32*packet.TCBytes; c++ {
			step(c)
		}
		if rb.Stats.TCDelivered == 0 {
			b.Fatal("tc_forward benchmark forwarded nothing during warm-up")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i)
		}
	})

	b.Run("be_contention", func(b *testing.B) {
		k, ra, rb := newBenchPair(b)
		payload := make([]byte, 64)
		topUp := func(r *Router, xoff int) {
			// Mirror a backpressured source: keep the injection port fed
			// from the recycled frame pool without queueing unboundedly.
			if r.BEInjectBacklog() >= 4 {
				return
			}
			frame, err := packet.AppendBE(r.BEFrameBuf(), xoff, 0, payload)
			if err != nil {
				b.Fatal(err)
			}
			r.InjectBE(frame)
		}
		step := func() {
			topUp(ra, 1)
			topUp(rb, -1)
			k.Step()
			ra.DrainBE()
			rb.DrainBE()
		}
		for c := 0; c < 512; c++ {
			step() // fill the wormholes and warm the frame pools
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.StopTimer()
		if ra.Stats.BEDelivered == 0 || rb.Stats.BEDelivered == 0 {
			b.Fatal("be_contention benchmark delivered nothing")
		}
	})
}
